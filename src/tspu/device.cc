#include "tspu/device.h"

#include <algorithm>

#include "netsim/network.h"
#include "obs/obs.h"
#include "quic/quic.h"
#include "tls/clienthello.h"
#include "util/statecodec.h"
#include "wire/icmp.h"
#include "wire/tcp.h"
#include "wire/udp.h"

namespace tspu::core {
namespace {

constexpr std::uint16_t kTlsPort = 443;

/// One flight-recorder counter per trigger class, mirroring stats_.triggers.
void count_trigger(TriggerType t) {
  // Cached obs handles, not results state: a CounterRef re-resolves itself
  // whenever the recorder generation changes, and counter deltas are merged
  // per shard by the obs layer — no reset wiring needed.
  // tspulint: allow(shard-escape) self-invalidating obs handle cache
  static thread_local obs::CounterRef refs[] = {
      obs::CounterRef("tspu.trigger.sni_i"),
      obs::CounterRef("tspu.trigger.sni_ii"),
      obs::CounterRef("tspu.trigger.sni_iii"),
      obs::CounterRef("tspu.trigger.sni_iv"),
      obs::CounterRef("tspu.trigger.quic"),
      obs::CounterRef("tspu.trigger.ip_based"),
  };
  refs[static_cast<int>(t)].add();
}

const char* trigger_name(TriggerType t) {
  switch (t) {
    case TriggerType::kSniI: return "sni_i";
    case TriggerType::kSniII: return "sni_ii";
    case TriggerType::kSniIII: return "sni_iii";
    case TriggerType::kSniIV: return "sni_iv";
    case TriggerType::kQuic: return "quic";
    case TriggerType::kIpBased: return "ip_based";
    case TriggerType::kCount_: break;
  }
  return "?";
}

/// Trace a device trigger/verdict decision on a flow.
void trace_verdict(const char* kind, const FlowKey& key, util::Instant now,
                   std::string detail) {
  if (!obs::tracing()) return;
  obs::trace_event(obs::Layer::kDevice, kind, now, flow_str(key),
                   std::move(detail));
}

FlowKey tcp_flow_key(const wire::Packet& pkt, const wire::TcpHeader& tcp,
                     bool upstream) {
  // `local` is always the inside endpoint: the source of upstream packets,
  // the destination of downstream ones.
  FlowKey key;
  key.proto = wire::IpProto::kTcp;
  if (upstream) {
    key.local = pkt.ip.src;
    key.remote = pkt.ip.dst;
    key.local_port = tcp.src_port;
    key.remote_port = tcp.dst_port;
  } else {
    key.local = pkt.ip.dst;
    key.remote = pkt.ip.src;
    key.local_port = tcp.dst_port;
    key.remote_port = tcp.src_port;
  }
  return key;
}

FlowKey udp_flow_key(const wire::Packet& pkt, const wire::UdpHeader& udp,
                     bool upstream) {
  FlowKey key;
  key.proto = wire::IpProto::kUdp;
  if (upstream) {
    key.local = pkt.ip.src;
    key.remote = pkt.ip.dst;
    key.local_port = udp.src_port;
    key.remote_port = udp.dst_port;
  } else {
    key.local = pkt.ip.dst;
    key.remote = pkt.ip.src;
    key.local_port = udp.dst_port;
    key.remote_port = udp.src_port;
  }
  return key;
}

/// Strips the payload and turns the segment into RST/ACK, leaving TTL, ports,
/// sequence and acknowledgement numbers untouched (§5.2 SNI-I / IP-based).
/// Takes the decoded header by value-semantics reference: the rewrite is the
/// one place the device MUTATES bytes, and it re-serializes from the header
/// fields rather than patching the original buffer.
wire::Packet rst_ack_rewrite(const wire::Packet& pkt,
                             const wire::TcpHeader& hdr) {
  wire::TcpHeader tcp = hdr;
  tcp.flags = wire::kRstAck;
  wire::Ipv4Header ip = pkt.ip;  // TTL and IPID preserved
  return wire::make_tcp_packet(ip, tcp, {});
}

}  // namespace

double FailureRates::of(TriggerType t) const {
  switch (t) {
    case TriggerType::kSniI: return sni_i;
    case TriggerType::kSniII: return sni_ii;
    case TriggerType::kSniIII: return sni_iii;
    case TriggerType::kSniIV: return sni_iv;
    case TriggerType::kQuic: return quic;
    case TriggerType::kIpBased: return ip_based;
    case TriggerType::kCount_: break;
  }
  return 0.0;
}

int sni_ii_grace_packets(const FlowKey& key) {
  // splitmix64 finalizer over the flow tuple: every tuple bit reaches the
  // low bits, so the 5-8 range is well spread across flows.
  std::uint64_t h = key.local.value();
  h = h * 1000003 + key.remote.value();
  h = h * 1000003 + (static_cast<std::uint64_t>(key.local_port) << 16 |
                     key.remote_port);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return 5 + static_cast<int>(h % 4);
}

namespace {

/// Tags for the stateless per-table eviction-RNG streams: each table's
/// stream is fault_stream_seed(reseed seed, tag, reboot generation), so
/// draws never touch the device's failure RNG.
constexpr std::uint32_t kConnEvictStream = 0xc077u;
constexpr std::uint32_t kFragEvictStream = 0xf2a6u;

}  // namespace

Device::Device(std::string name, PolicyPtr policy, DeviceConfig config)
    : Middlebox(std::move(name)),
      policy_(std::move(policy)),
      config_(config),
      conntrack_(config.conn_timeouts, config.block_timeouts,
                 config.capabilities.strict_role_inference),
      frag_engine_(config.frag),
      inspect_reasm_(wire::ReassemblyConfig{}),
      rng_(config.seed),
      reseed_seed_(config.seed) {
  conntrack_.set_budget(config_.conn_budget, config_.overload);
  frag_engine_.set_budget(config_.frag_budget, config_.overload);
  conntrack_.reseed_eviction(
      netsim::fault_stream_seed(reseed_seed_, kConnEvictStream, 0));
  frag_engine_.reseed_eviction(
      netsim::fault_stream_seed(reseed_seed_, kFragEvictStream, 0));
}

void Device::audit_state(util::Instant now) const {
  frag_engine_.audit(now);
  conntrack_.audit(now);
}

void Device::reseed(std::uint64_t seed) {
  rng_.reseed(seed);
  reseed_seed_ = seed;
  // Eviction streams are derived statelessly from the item seed — consuming
  // rng_ here would shift the failure-draw sequence and change unbounded
  // baselines that never evict at all.
  conntrack_.reseed_eviction(
      netsim::fault_stream_seed(seed, kConnEvictStream, 0));
  frag_engine_.reseed_eviction(
      netsim::fault_stream_seed(seed, kFragEvictStream, 0));
  // Fault windows/reboots are trial-relative: each begin_trial() advances
  // the virtual clock far past the previous item, so anchoring here makes
  // "flap 30 ms into the trial" mean the same thing for every item.
  fault_epoch_ = net().now();
  reboots_applied_ = 0;
  in_flap_ = false;
  // Sweep out whatever expired flow/fragment state the previous item left
  // behind NOW, at the trial boundary (the topo layer mutes recording
  // here), instead of lazily during the next item's traffic — lazy erasure
  // of a PREVIOUS item's leftovers would make per-item expiry counters
  // depend on which items shared the replica, breaking jobs-invariance.
  frag_engine_.expire(net().now());
  conntrack_.live_entries(net().now());
}

void Device::wipe_state() {
  conntrack_ = ConnTracker(config_.conn_timeouts, config_.block_timeouts,
                           config_.capabilities.strict_role_inference);
  frag_engine_ = FragmentEngine(config_.frag);
  inspect_reasm_ = wire::Reassembler(wire::ReassemblyConfig{});
  // A reboot loses flow state, not provisioning: budgets survive, and the
  // eviction streams restart on a per-reboot generation of the item seed.
  conntrack_.set_budget(config_.conn_budget, config_.overload);
  frag_engine_.set_budget(config_.frag_budget, config_.overload);
  const std::uint32_t generation =
      static_cast<std::uint32_t>(reboots_applied_ + 1);
  conntrack_.reseed_eviction(
      netsim::fault_stream_seed(reseed_seed_, kConnEvictStream, generation));
  frag_engine_.reseed_eviction(
      netsim::fault_stream_seed(reseed_seed_, kFragEvictStream, generation));
  ++stats_.fault_reboots;
  TSPU_OBS_COUNT("tspu.fault.reboot");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kDevice, "fault.reboot", net().now(), {},
                     name());
  }
}

void Device::save_state(util::StateWriter& w) const {
  w.u64(stats_.packets_processed);
  w.u64(stats_.packets_dropped);
  w.u64(stats_.rst_rewrites);
  for (std::uint64_t v : stats_.triggers) w.u64(v);
  for (std::uint64_t v : stats_.failures_injected) w.u64(v);
  w.u64(stats_.fault_forwarded);
  w.u64(stats_.fault_dropped);
  w.u64(stats_.fault_reboots);
  w.u64(stats_.overload_forwarded);
  w.u64(stats_.overload_dropped);
  for (std::uint64_t lane : rng_.state()) w.u64(lane);
  w.i64(fault_epoch_.as_micros());
  w.u64(reboots_applied_);
  w.boolean(in_flap_);
  w.u64(reseed_seed_);
  conntrack_.save_state(w);
  frag_engine_.save_state(w);
  inspect_reasm_.save_state(w);
}

bool Device::load_state(util::StateReader& r) {
  DeviceStats stats;
  if (!r.u64(stats.packets_processed) || !r.u64(stats.packets_dropped) ||
      !r.u64(stats.rst_rewrites)) {
    return false;
  }
  for (std::uint64_t& v : stats.triggers) {
    if (!r.u64(v)) return false;
  }
  for (std::uint64_t& v : stats.failures_injected) {
    if (!r.u64(v)) return false;
  }
  if (!r.u64(stats.fault_forwarded) || !r.u64(stats.fault_dropped) ||
      !r.u64(stats.fault_reboots) || !r.u64(stats.overload_forwarded) ||
      !r.u64(stats.overload_dropped)) {
    return false;
  }
  std::array<std::uint64_t, 4> lanes{};
  for (std::uint64_t& lane : lanes) {
    if (!r.u64(lane)) return false;
  }
  std::int64_t epoch_us = 0;
  std::uint64_t reboots = 0;
  bool flap = false;
  std::uint64_t seed = 0;
  if (!r.i64(epoch_us) || !r.u64(reboots) || !r.boolean(flap) ||
      !r.u64(seed)) {
    return false;
  }
  if (!rng_.set_state(lanes)) return false;
  if (!conntrack_.load_state(r) || !frag_engine_.load_state(r) ||
      !inspect_reasm_.load_state(r)) {
    return false;
  }
  stats_ = stats;
  fault_epoch_ = util::Instant::from_micros(epoch_us);
  reboots_applied_ = static_cast<std::size_t>(reboots);
  in_flap_ = flap;
  reseed_seed_ = seed;
  return true;
}

bool Device::fault_intercept(wire::Packet& pkt, bool upstream) {
  const util::Duration since = net().now() - fault_epoch_;
  while (reboots_applied_ < config_.faults.reboots.size() &&
         config_.faults.reboots[reboots_applied_] <= since) {
    wipe_state();
    ++reboots_applied_;
  }
  const bool down = netsim::flap_down(config_.faults.flaps, since);
  if (!down && in_flap_) {
    in_flap_ = false;
    // Coming back from an outage: unless configured as a pure bypass, the
    // box rebooted and lost its flow state.
    if (config_.faults.reboot_on_recovery) wipe_state();
  }
  if (!down) return false;
  in_flap_ = true;
  if (config_.faults.flap_mode == netsim::DeviceFailMode::kFailClosed) {
    ++stats_.fault_dropped;
    TSPU_OBS_COUNT("tspu.fault.dropped");
    drop(pkt);
  } else {
    ++stats_.fault_forwarded;
    TSPU_OBS_COUNT("tspu.fault.forwarded");
    forward(std::move(pkt), upstream);
  }
  return true;
}

void Device::overload_action(wire::Packet pkt, bool upstream) {
  // Mirrors fault_intercept's flap semantics, but for a single rejected
  // admission instead of an outage window: fail-open forges false-allows,
  // fail-closed forges false-blocks. Reached only on budgeted devices.
  if (config_.overload.mode == netsim::DeviceFailMode::kFailClosed) {
    ++stats_.overload_dropped;
    TSPU_OBS_COUNT("tspu.overload.dropped");
    drop(pkt);
  } else {
    ++stats_.overload_forwarded;
    TSPU_OBS_COUNT("tspu.overload.forwarded");
    forward(std::move(pkt), upstream);
  }
}

std::optional<std::string_view> Device::sniff_sni(
    std::span<const std::uint8_t> payload) const {
  return config_.capabilities.multi_record_parse
             ? tls::find_sni_view_multi_record(payload)
             : tls::find_sni_view(payload);
}

void Device::inspect_reassembled(const wire::Packet& whole, bool upstream) {
  if (!upstream || whole.ip.proto != wire::IpProto::kTcp) return;
  // `whole` outlives this function, so the view (and the SNI pointing into
  // it) is valid for the entire inspection.
  auto seg = wire::parse_tcp_view(whole, /*verify_checksum=*/false);
  if (!seg || seg->hdr.dst_port != kTlsPort || seg->payload.empty()) return;
  auto sni = sniff_sni(seg->payload);
  if (!sni) return;
  auto rule = policy_->match_sni(*sni);
  if (!rule) return;

  const FlowKey key = tcp_flow_key(whole, seg->hdr, upstream);
  ConnEntry* admitted =
      conntrack_.admit_tcp(key, seg->hdr.flags, upstream, net().now());
  // Rejected admission: the fragments were already forwarded, so a
  // saturated tracker simply fails to arm the block — a false-allow with
  // no packet left to apply the overload policy to.
  if (admitted == nullptr) return;
  ConnEntry& entry = *admitted;
  if (entry.block != BlockMode::kNone || !entry.local_is_effective_client())
    return;
  // Arm the same behaviors the in-line path would; the fragments themselves
  // were already forwarded (as with SNI-I, the trigger packet gets through;
  // everything AFTER it is censored).
  if (rule->rst_ack && !draw_failure(entry, TriggerType::kSniI)) {
    ++stats_.triggers[static_cast<int>(TriggerType::kSniI)];
    count_trigger(TriggerType::kSniI);
    trace_verdict("trigger.reassembled", key, net().now(), "sni_i");
    entry.block = BlockMode::kSniRstAck;
    entry.block_last_activity = net().now();
  } else if (rule->delayed_drop &&
             !draw_failure(entry, TriggerType::kSniII)) {
    ++stats_.triggers[static_cast<int>(TriggerType::kSniII)];
    count_trigger(TriggerType::kSniII);
    trace_verdict("trigger.reassembled", key, net().now(), "sni_ii");
    entry.block = BlockMode::kSniDelayedDrop;
    entry.block_last_activity = net().now();
    entry.grace_remaining = sni_ii_grace_packets(key);
  }
}

void Device::forward(wire::Packet pkt, bool upstream) {
  forward_on(std::move(pkt), upstream ? netsim::Direction::kLeftToRight
                                      : netsim::Direction::kRightToLeft);
}

void Device::drop(const wire::Packet& pkt) {
  ++stats_.packets_dropped;
  TSPU_OBS_COUNT("tspu.device.dropped");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kDevice, "drop", net().now(), {}, name(),
                     obs::hex_encode(wire::serialize(pkt)));
  }
}

bool Device::draw_failure(ConnEntry& entry, TriggerType type) {
  const int bit = 1 << static_cast<int>(type);
  if (!(entry.failure_drawn_mask & bit)) {
    entry.failure_drawn_mask |= bit;
    if (rng_.bernoulli(config_.failures.of(type))) {
      entry.failure_result_mask |= bit;
      ++stats_.failures_injected[static_cast<int>(type)];
      TSPU_OBS_COUNT("tspu.failure_injected");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kDevice, "failure_injected", net().now(),
                         {}, trigger_name(type));
      }
    }
  }
  return entry.failure_result_mask & bit;
}

void Device::process(wire::Packet pkt, netsim::Direction dir) {
  ++stats_.packets_processed;
  TSPU_OBS_COUNT("tspu.device.packets");
  const bool upstream = dir == netsim::Direction::kLeftToRight;

  if (config_.faults.any() && fault_intercept(pkt, upstream)) return;

  // ICMP involving a blocked IP is dropped in both directions (§5.2:
  // "ICMP Pings to/from blocked IPs are also dropped").
  if (pkt.ip.proto == wire::IpProto::kIcmp &&
      (policy_->ip_blocked(pkt.ip.src) || policy_->ip_blocked(pkt.ip.dst))) {
    drop(pkt);
    return;
  }

  if (pkt.ip.is_fragment()) {
    handle_fragment(std::move(pkt), upstream);
    return;
  }

  switch (pkt.ip.proto) {
    case wire::IpProto::kTcp:
      handle_tcp(std::move(pkt), upstream);
      return;
    case wire::IpProto::kUdp:
      handle_udp(std::move(pkt), upstream);
      return;
    case wire::IpProto::kIcmp:
      forward(std::move(pkt), upstream);
      return;
  }
  forward(std::move(pkt), upstream);  // unknown protocol: pass
}

void Device::handle_fragment(wire::Packet pkt, bool upstream) {
  // The IP blocklist is enforced at the IP layer, before any buffering:
  // upstream traffic toward a blocked IP is local-initiated contact.
  if (upstream && policy_->ip_blocked(pkt.ip.dst)) {
    drop(pkt);
    return;
  }
  // Fragments are buffered and forwarded without reassembly; the DPI stages
  // never see them as complete datagrams — which is exactly why fragmenting
  // a ClientHello evades SNI censorship (§8). A patched device additionally
  // rebuilds a copy for inspection.
  if (config_.capabilities.ip_defragment_inspect) {
    if (auto whole = inspect_reasm_.push(pkt, net().now())) {
      inspect_reassembled(*whole, upstream);
    }
    inspect_reasm_.expire(net().now());
  }
  bool rejected = false;
  std::vector<wire::Packet> out =
      frag_engine_.push(std::move(pkt), net().now(), &rejected);
  if (rejected) {
    // The engine handed the unbuffered fragment back: the overload policy
    // decides whether it travels uninspected or dies here.
    for (wire::Packet& p : out) overload_action(std::move(p), upstream);
    return;
  }
  for (wire::Packet& p : out) {
    forward(std::move(p), upstream);
  }
}

void Device::handle_udp(wire::Packet pkt, bool upstream) {
  // Zero-copy: the QUIC fingerprint probe reads straight from the packet's
  // bytes. Every use of the view precedes any move of `pkt`.
  auto dgram = wire::parse_udp_view(pkt, /*verify_checksum=*/false);
  if (!dgram) {
    forward(std::move(pkt), upstream);
    return;
  }
  const FlowKey key = udp_flow_key(pkt, dgram->hdr, upstream);

  if (upstream && policy_->ip_blocked(key.remote)) {
    // No TCP flags to rewrite: plain drop of local-initiated UDP.
    drop(pkt);
    return;
  }

  if (ConnEntry* entry = conntrack_.find(key, net().now());
      entry != nullptr && entry->block == BlockMode::kQuicDrop) {
    // "once such a packet is detected, all following packets from the same
    // flow will be dropped, regardless of their length or the presence of
    // the QUIC fingerprint" (§5.2).
    entry->block_last_activity = net().now();
    drop(pkt);
    return;
  }

  if (upstream && policy_->quic_blocking &&
      quic::tspu_quic_fingerprint(dgram->payload, dgram->hdr.dst_port)) {
    ConnEntry* entry =
        conntrack_.track_udp(key, upstream, net().now(), /*create=*/true);
    if (entry == nullptr) {
      // Admission rejected: a saturated tracker cannot arm the QUIC drop,
      // so the fingerprinted packet meets the overload policy instead.
      overload_action(std::move(pkt), upstream);
      return;
    }
    ++stats_.triggers[static_cast<int>(TriggerType::kQuic)];
    count_trigger(TriggerType::kQuic);
    trace_verdict("trigger", key, net().now(), "quic");
    if (!draw_failure(*entry, TriggerType::kQuic)) {
      entry->block = BlockMode::kQuicDrop;
      entry->block_last_activity = net().now();
      drop(pkt);
      return;
    }
  }
  forward(std::move(pkt), upstream);
}

void Device::handle_tcp(wire::Packet pkt, bool upstream) {
  // The packet is parsed ONCE into a non-owning view and every dispatch
  // below reads from it — header fields are decoded by value and the
  // payload (and any SNI found inside it) stays a view into `pkt`. All view
  // uses precede the std::move(pkt) that ends this packet's handling; the
  // only owning re-serialization left is the RST/ACK rewrite, which mutates
  // bytes.
  auto seg_opt = wire::parse_tcp_view(pkt, /*verify_checksum=*/false);
  if (!seg_opt) {
    forward(std::move(pkt), upstream);
    return;
  }
  const wire::TcpView& seg = *seg_opt;
  const FlowKey key = tcp_flow_key(pkt, seg.hdr, upstream);
  ConnEntry* admitted =
      conntrack_.admit_tcp(key, seg.hdr.flags, upstream, net().now());
  if (admitted == nullptr) {
    // Saturated conntrack rejected the flow: the packet is never inspected
    // — fail-open lets even blocked traffic through (false-allow),
    // fail-closed eats innocent flows (false-block).
    overload_action(std::move(pkt), upstream);
    return;
  }
  ConnEntry& entry = *admitted;

  // ---- IP-based blocking (§5.2) ----
  // Enforcement is stateless and flag-based, which is what the remote
  // measurements exploit: an upstream-only device that never saw the blocked
  // IP's SYN still rewrites the local SYN/ACK to RST/ACK (Table 5).
  //  * upstream bare SYN toward a blocked IP (a local client initiating
  //    contact) -> dropped, so "the outgoing packets would be dropped";
  //  * any other upstream packet toward a blocked IP (responses to a
  //    connection the blocked IP initiated) -> payload stripped, flags
  //    changed to RST/ACK;
  //  * downstream packets FROM the blocked IP pass through untouched.
  if (upstream && policy_->ip_blocked(key.remote)) {
    ++stats_.triggers[static_cast<int>(TriggerType::kIpBased)];
    count_trigger(TriggerType::kIpBased);
    trace_verdict("trigger", key, net().now(), "ip_based");
    if (!rng_.bernoulli(config_.failures.ip_based)) {
      if (seg.hdr.flags.is_syn_only()) {
        drop(pkt);
      } else {
        ++stats_.rst_rewrites;
        TSPU_OBS_COUNT("tspu.device.rst_rewrite");
        trace_verdict("rst_rewrite", key, net().now(), "ip_based");
        forward(rst_ack_rewrite(pkt, seg.hdr), upstream);
      }
      return;
    }
    ++stats_.failures_injected[static_cast<int>(TriggerType::kIpBased)];
    TSPU_OBS_COUNT("tspu.failure_injected");
  }

  // ---- Active blocking state ----
  if (entry.block != BlockMode::kNone) {
    apply_block(entry, std::move(pkt), seg.hdr, upstream);
    return;
  }

  // ---- §8 patch: filter servers advertising tiny flow-control windows ----
  if (config_.capabilities.filter_small_windows && !upstream &&
      seg.hdr.flags.syn() &&
      seg.hdr.window < config_.capabilities.min_server_window) {
    drop(pkt);
    return;
  }

  // ---- Trigger evaluation: upstream ClientHello to :443 ----
  // Every upstream packet is inspected — the paper found the inspection
  // window now covers packets arriving later in a session, which is what
  // killed the TTL-limited-decoy evasion (§8).
  if (upstream && seg.hdr.dst_port == kTlsPort && !seg.payload.empty()) {
    if (auto sni = sniff_sni(seg.payload)) {
      if (auto rule = policy_->match_sni(*sni)) {
        evaluate_sni_trigger(entry, key, *rule, std::move(pkt), upstream);
        return;
      }
    } else if (config_.capabilities.tcp_reassembly && !entry.stream_overflow) {
      // §8 patch: reassemble the upstream byte stream so a ClientHello
      // split across TCP segments (or IP fragments of segments) is still
      // matched. "TCP flow reassembly is a standard feature for today's
      // DPIs, though it comes with a significantly higher requirement for
      // resources" — modeled by the per-flow stream cap.
      if (!conntrack_.charge_stream(seg.payload.size())) {
        // Device-wide reassembly byte budget exhausted: give up on this
        // flow exactly like the per-flow cap does. Bytes already buffered
        // for the flow go back to the budget.
        conntrack_.release_stream(entry);
        entry.stream_overflow = true;
      } else {
        entry.upstream_stream.insert(entry.upstream_stream.end(),
                                     seg.payload.begin(), seg.payload.end());
        if (entry.upstream_stream.size() > config_.stream_cap_bytes) {
          conntrack_.release_stream(entry);
          entry.stream_overflow = true;
        } else if (auto assembled = sniff_sni(entry.upstream_stream)) {
          if (auto rule = policy_->match_sni(*assembled)) {
            conntrack_.release_stream(entry);
            evaluate_sni_trigger(entry, key, *rule, std::move(pkt), upstream);
            return;
          }
        }
      }
    }
  }

  forward(std::move(pkt), upstream);
}

void Device::evaluate_sni_trigger(ConnEntry& entry, const FlowKey& key,
                                  const SniPolicy& rule, wire::Packet pkt,
                                  bool upstream) {
  const util::Instant now = net().now();
  if (entry.local_is_effective_client()) {
    if (rule.rst_ack) {
      ++stats_.triggers[static_cast<int>(TriggerType::kSniI)];
      count_trigger(TriggerType::kSniI);
      trace_verdict("trigger", key, now, "sni_i");
      if (!draw_failure(entry, TriggerType::kSniI)) {
        entry.block = BlockMode::kSniRstAck;
        entry.block_last_activity = now;
      }
      // The triggering ClientHello itself is delivered (Figure 2, SNI-I).
      forward(std::move(pkt), upstream);
      return;
    }
    if (rule.throttle) {
      ++stats_.triggers[static_cast<int>(TriggerType::kSniIII)];
      count_trigger(TriggerType::kSniIII);
      trace_verdict("trigger", key, now, "sni_iii");
      if (!draw_failure(entry, TriggerType::kSniIII)) {
        entry.block = BlockMode::kSniThrottle;
        entry.block_last_activity = now;
        entry.throttle_tokens = config_.throttle_burst_bytes;
        entry.throttle_refilled = now;
      }
      forward(std::move(pkt), upstream);
      return;
    }
    if (rule.delayed_drop) {
      ++stats_.triggers[static_cast<int>(TriggerType::kSniII)];
      count_trigger(TriggerType::kSniII);
      trace_verdict("trigger", key, now, "sni_ii");
      if (!draw_failure(entry, TriggerType::kSniII)) {
        entry.block = BlockMode::kSniDelayedDrop;
        entry.block_last_activity = now;
        entry.grace_remaining = sni_ii_grace_packets(key);
      }
      forward(std::move(pkt), upstream);
      return;
    }
  } else if (rule.backup_drop && entry.initiator == Initiator::kLocal) {
    // SNI-IV: the backup mechanism fires exactly when SNI-I cannot act on a
    // LOCAL-initiated flow whose roles were reversed (the "green" sequences
    // of Figure 4) and eats everything, including this very ClientHello.
    // Remote-initiated flows are not valid blocking prefixes at all (§5.3.2).
    ++stats_.triggers[static_cast<int>(TriggerType::kSniIV)];
    count_trigger(TriggerType::kSniIV);
    trace_verdict("trigger", key, now, "sni_iv");
    if (!draw_failure(entry, TriggerType::kSniIV)) {
      entry.block = BlockMode::kSniBackupDrop;
      entry.block_last_activity = now;
      drop(pkt);
      return;
    }
  }
  forward(std::move(pkt), upstream);
}

void Device::apply_block(ConnEntry& entry, wire::Packet pkt,
                         const wire::TcpHeader& hdr, bool upstream) {
  const util::Instant now = net().now();
  switch (entry.block) {
    case BlockMode::kSniRstAck:
      entry.block_last_activity = now;
      if (!upstream) {
        // Downstream packets are truncated and turned into RST/ACK; their
        // TTL/seq/ack survive (§5.2). Upstream packets pass — SNI-I acts
        // only on downstream traffic (§7.1.1).
        ++stats_.rst_rewrites;
        TSPU_OBS_COUNT("tspu.device.rst_rewrite");
        forward(rst_ack_rewrite(pkt, hdr), upstream);
        return;
      }
      forward(std::move(pkt), upstream);
      return;

    case BlockMode::kSniDelayedDrop:
      entry.block_last_activity = now;
      if (entry.grace_remaining > 0) {
        --entry.grace_remaining;
        forward(std::move(pkt), upstream);
        return;
      }
      drop(pkt);
      return;

    case BlockMode::kSniThrottle: {
      entry.block_last_activity = now;
      // Token-bucket policing: refill at ~650 B/s, drop what exceeds (§5.2:
      // "drops packets that exceed the rate limit").
      const double elapsed = (now - entry.throttle_refilled).as_seconds();
      entry.throttle_tokens =
          std::min(config_.throttle_burst_bytes,
                   entry.throttle_tokens +
                       elapsed * config_.throttle_bytes_per_sec);
      entry.throttle_refilled = now;
      const double cost = static_cast<double>(pkt.size());
      if (entry.throttle_tokens >= cost) {
        entry.throttle_tokens -= cost;
        forward(std::move(pkt), upstream);
      } else {
        drop(pkt);
      }
      return;
    }

    case BlockMode::kSniBackupDrop:
    case BlockMode::kQuicDrop:
      entry.block_last_activity = now;
      drop(pkt);
      return;

    case BlockMode::kNone:
      forward(std::move(pkt), upstream);
      return;
  }
}

}  // namespace tspu::core
