// The TSPU device: an in-path, stateful DPI middlebox implementing every
// blocking behavior the paper observed (Figure 2):
//
//   SNI-I   RST/ACK rewriting of downstream packets after a triggering
//           ClientHello (§5.2)
//   SNI-II  5-8 grace packets, then symmetric drops (§5.2)
//   SNI-III traffic policing at ~650 bytes/sec (Feb 26 - Mar 4 era, §5.2)
//   SNI-IV  backup bidirectional drop when SNI-I cannot act (§5.3.2)
//   QUIC    flow drop on the Figure-14 fingerprint (§5.2)
//   IP      drop local-initiated traffic to blocked IPs; RST/ACK-rewrite
//           responses to connections initiated BY a blocked IP (§5.2)
//
// plus the fragment engine of §5.3.1 and the conntrack of §5.3.2/§5.3.3.
//
// Placement convention: Network::insert_inline(inside, outside, device) puts
// the Russian-user side on the LEFT, so Direction::kLeftToRight is upstream.
// A device only ever acts on what it sees: installing it on a link that the
// reverse path bypasses yields an "upstream-only" device (§7.1.1) with no
// extra configuration.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <string_view>

#include "netsim/faults.h"
#include "netsim/middlebox.h"
#include "tspu/conntrack.h"
#include "tspu/frag_engine.h"
#include "tspu/policy.h"
#include "tspu/timeouts.h"
#include "util/rng.h"

namespace tspu::util {
class StateReader;
class StateWriter;
}  // namespace tspu::util

namespace tspu::core {

/// Per-trigger-type probability that this device FAILS to act on a trigger
/// (drawn once per flow per type). Calibrated per-ISP to reproduce Table 1.
struct FailureRates {
  double sni_i = 0.0;
  double sni_ii = 0.0;
  double sni_iii = 0.0;
  double sni_iv = 0.0;
  double quic = 0.0;
  double ip_based = 0.0;

  double of(TriggerType t) const;
};

/// The §8 "patch" capabilities: evasion counter-measures the paper argues
/// the TSPU could deploy "assuming it is provisioned with enough computation
/// and memory resources". All default OFF — the deployed 2022 device. The
/// ablation bench (ablation_patched_device) shows which strategies each
/// capability eliminates.
struct DeviceCapabilities {
  /// Reassemble the upstream TCP byte stream per flow before SNI matching
  /// ("TCP flow reassembly is a standard feature for today's DPIs"):
  /// defeats TCP segmentation, small-window, and padded-CH evasion.
  bool tcp_reassembly = false;
  /// Reassemble IP fragments for inspection (forwarding is unchanged):
  /// defeats IP-fragmentation of the ClientHello.
  bool ip_defragment_inspect = false;
  /// Ad-hoc client/server role reasoning: split handshake / simultaneous
  /// open no longer reverse the roles.
  bool strict_role_inference = false;
  /// "filter servers' advertised flow control windows": drop downstream
  /// SYN/SYN-ACKs whose window is below min_server_window.
  bool filter_small_windows = false;
  std::uint16_t min_server_window = 256;
  /// Parse every TLS record in a packet, not just the first: defeats the
  /// prepended-record evasion.
  bool multi_record_parse = false;

  static DeviceCapabilities all() {
    return {true, true, true, true, 256, true};
  }
};

struct DeviceConfig {
  FailureRates failures;
  ConntrackTimeouts conn_timeouts;
  BlockingTimeouts block_timeouts;
  FragmentTimeouts frag;
  DeviceCapabilities capabilities;
  /// SNI-III policing rate: "around 600-700 bytes per second" (§5.2).
  double throttle_bytes_per_sec = 650.0;
  /// Bucket depth: just above one MTU-sized packet, so a full-size segment
  /// can pass once the bucket refills (a policer whose bucket is smaller
  /// than the MTU would starve bulk flows entirely).
  double throttle_burst_bytes = 2000.0;
  /// Cap on per-flow reassembled stream bytes (tcp_reassembly only).
  std::size_t stream_cap_bytes = 8192;
  /// Capacity budget for the conntrack table. max_entries caps tracked
  /// flows; max_bytes caps the DEVICE-WIDE reassembled TCP stream
  /// footprint. Default unbounded — byte-identical to the pre-budget box.
  TableBudget conn_budget;
  /// Capacity budget for the fragment engine: max_entries caps in-flight
  /// queues, max_bytes total buffered fragment payload.
  TableBudget frag_budget;
  /// What the device does with traffic a saturated table REJECTED
  /// (RejectNew policy): fail-open forwards it uninspected (false-allows,
  /// mirroring the flap semantics below), fail-closed eats it
  /// (false-blocks). Also carries the overload hysteresis band.
  OverloadPolicy overload;
  std::uint64_t seed = 0x75b4;
  /// Injected device faults: fail-open/fail-closed outage windows and
  /// mid-flow reboots that wipe conntrack/fragment state (the §3 "TSPU
  /// failure" case). Windows are relative to the last reseed().
  netsim::DeviceFaultPlan faults;
};

struct DeviceStats {
  std::uint64_t packets_processed = 0;
  std::uint64_t packets_dropped = 0;
  std::uint64_t rst_rewrites = 0;
  std::array<std::uint64_t, static_cast<int>(TriggerType::kCount_)> triggers{};
  std::array<std::uint64_t, static_cast<int>(TriggerType::kCount_)>
      failures_injected{};
  std::uint64_t fault_forwarded = 0;  ///< passed uninspected while fail-open
  std::uint64_t fault_dropped = 0;    ///< eaten while fail-closed
  std::uint64_t fault_reboots = 0;    ///< state wipes applied
  /// Rejected-admission outcomes (budgeted tables only — always zero on an
  /// unbounded device).
  std::uint64_t overload_forwarded = 0;  ///< passed uninspected (fail-open)
  std::uint64_t overload_dropped = 0;    ///< eaten (fail-closed)
};

class Device : public netsim::Middlebox {
 public:
  Device(std::string name, PolicyPtr policy, DeviceConfig config = {});

  void process(wire::Packet pkt, netsim::Direction dir) override;

  /// Debug-build invariant sweep over frag-engine and conntrack state; the
  /// Network invokes this after every simulator event (util/check.h).
  void audit_state(util::Instant now) const override;

  /// Rewinds the failure-injection RNG to a fresh stream and re-anchors the
  /// fault-plan epoch at the current sim instant. The parallel runner calls
  /// this between work items so a probe's failure draws — and its fault
  /// windows — depend only on the item's own seed, never on earlier items.
  void reseed(std::uint64_t seed);

  /// Installs (or replaces) this device's fault plan; windows stay relative
  /// to the last reseed() epoch.
  void set_fault_plan(netsim::DeviceFaultPlan plan) {
    config_.faults = std::move(plan);
  }
  const netsim::DeviceFaultPlan& fault_plan() const { return config_.faults; }

  const DeviceStats& stats() const { return stats_; }
  const FragEngineStats& frag_stats() const { return frag_engine_.stats(); }
  const Policy& policy() const { return *policy_; }
  ConnTracker& conntrack() { return conntrack_; }

  /// Checkpoint serialization of everything reseed()/process() mutates:
  /// stats, the failure-draw RNG, fault-plan runtime (epoch, applied
  /// reboots, flap latch), the last reseed seed, and the nested conntrack /
  /// fragment-engine / inspection-reassembler state. Config and policy are
  /// construction state and stay out of the snapshot.
  void save_state(util::StateWriter& w) const;

  /// Restores a saved runtime state; false on garbage (nested decoders
  /// reject out-of-range enums, duplicate keys, truncation).
  bool load_state(util::StateReader& r);

 private:
  void handle_tcp(wire::Packet pkt, bool upstream);
  void handle_udp(wire::Packet pkt, bool upstream);
  void handle_fragment(wire::Packet pkt, bool upstream);

  /// Finds the triggering SNI in a payload (honoring multi_record_parse).
  /// Returns a view INTO `payload`: callers use it before the packet (or
  /// reassembled stream) that backs the payload is moved or mutated.
  std::optional<std::string_view> sniff_sni(
      std::span<const std::uint8_t> payload) const;
  /// ip_defragment_inspect: runs SNI inspection over a datagram rebuilt
  /// from fragments (forwarding happened separately).
  void inspect_reassembled(const wire::Packet& whole, bool upstream);

  void evaluate_sni_trigger(ConnEntry& entry, const FlowKey& key,
                            const SniPolicy& rule, wire::Packet pkt,
                            bool upstream);
  void apply_block(ConnEntry& entry, wire::Packet pkt,
                   const wire::TcpHeader& hdr, bool upstream);

  /// One Bernoulli draw per flow per trigger type; true = device fails.
  bool draw_failure(ConnEntry& entry, TriggerType type);

  /// Applies the fault plan to one packet: triggers due reboots, and while
  /// a flap window is open either forwards uninspected (fail-open) or eats
  /// the packet (fail-closed). True when the packet was consumed here.
  bool fault_intercept(wire::Packet& pkt, bool upstream);
  /// Disposes of a packet whose state-table admission was REJECTED:
  /// fail-open forwards it uninspected, fail-closed drops it.
  void overload_action(wire::Packet pkt, bool upstream);
  /// The mid-flow reboot: wipes conntrack, fragment queues, and the
  /// inspection reassembler — everything a §4 flag-sequence probe can see.
  void wipe_state();

  void forward(wire::Packet pkt, bool upstream);
  void drop(const wire::Packet& pkt);

  PolicyPtr policy_;
  DeviceConfig config_;
  ConnTracker conntrack_;
  FragmentEngine frag_engine_;
  /// Parallel inspection-only reassembly (ip_defragment_inspect); queues
  /// are keyed by (src, dst, IPID) so both directions share one instance.
  wire::Reassembler inspect_reasm_;
  util::Rng rng_;
  DeviceStats stats_;
  /// Fault-plan runtime: windows/reboots are offsets from this epoch.
  util::Instant fault_epoch_;
  std::size_t reboots_applied_ = 0;
  bool in_flap_ = false;
  /// Last reseed() seed: eviction-RNG streams for mid-trial reboots are
  /// derived from it statelessly (never by consuming rng_, which would
  /// shift the failure-draw Bernoulli sequence).
  std::uint64_t reseed_seed_;
};

/// Deterministic SNI-II grace-packet count in [5, 8] derived from the flow
/// key (the paper reports "five to eight", varying per connection).
int sni_ii_grace_packets(const FlowKey& key);

}  // namespace tspu::core
