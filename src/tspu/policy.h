// Central blocking policy — the model of Roskomnadzor's control plane.
//
// Every TSPU device in a deployment shares one Policy object, which is the
// architectural point of the paper: devices are centrally ordered and
// centrally configured, so blocklists and behaviors are uniform across ISPs
// at any instant (§5.1), unlike the per-ISP blocklists of the old
// decentralized model.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/flat_map.h"
#include "util/ip.h"

namespace tspu::core {

/// What SNI-based behaviors apply to a domain (§5.2). A domain may carry
/// several: SNI-IV targets are a subset of SNI-I targets.
struct SniPolicy {
  bool rst_ack = false;       ///< SNI-I: rewrite downstream to RST/ACK
  bool delayed_drop = false;  ///< SNI-II: 5-8 grace packets, then drop both ways
  bool throttle = false;      ///< SNI-III: police the flow to ~650 B/s
  bool backup_drop = false;   ///< SNI-IV: bidirectional drop when SNI-I can't act

  bool any() const { return rst_ack || delayed_drop || throttle || backup_drop; }
};

class Policy {
 public:
  /// Registers `domain` (and all its subdomains) with the given behaviors.
  void add_sni(const std::string& domain, SniPolicy behavior);

  /// Exact-or-parent-domain lookup; nullopt when the SNI is not targeted.
  /// Takes a string_view so zero-copy inspection paths (tls::find_sni_view
  /// pointing into the packet) probe without materializing a std::string —
  /// no temporary is built on miss or hit.
  std::optional<SniPolicy> match_sni(std::string_view host) const;

  void block_ip(util::Ipv4Addr ip) { blocked_ips_.insert(ip); }
  void unblock_ip(util::Ipv4Addr ip) { blocked_ips_.erase(ip); }
  bool ip_blocked(util::Ipv4Addr ip) const { return blocked_ips_.count(ip); }

  /// QUIC v1 fingerprint filtering toggle (switched on March 4, 2022).
  bool quic_blocking = true;

  /// All registered SNI rules (used by what-does-it-block sweeps). Ordered
  /// containers so sweeps iterate in a deterministic, reproducible order —
  /// tspulint bans unordered containers in src/tspu for this reason.
  const std::map<std::string, SniPolicy>& sni_rules() const {
    return sni_rules_;
  }
  const std::set<util::Ipv4Addr>& blocked_ips() const {
    return blocked_ips_;
  }

  std::size_t sni_rule_count() const { return sni_rules_.size(); }

 private:
  std::map<std::string, SniPolicy> sni_rules_;  // by lowercase domain
  /// The same rules keyed by REVERSED lowercase domain in a sorted vector:
  /// match_sni does one longest-prefix binary search here instead of a
  /// per-label map probe per suffix. The transparent comparator lets the
  /// search run on string_view needles without temporaries. mutable because
  /// lookups consolidate the FlatMap's insertion tail (iteration order is
  /// unaffected).
  mutable util::FlatMap<std::string, SniPolicy, std::less<>> rules_by_suffix_;
  std::set<util::Ipv4Addr> blocked_ips_;
};

using PolicyPtr = std::shared_ptr<Policy>;

}  // namespace tspu::core
