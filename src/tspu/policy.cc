#include "tspu/policy.h"

#include "util/strings.h"

namespace tspu::core {

void Policy::add_sni(const std::string& domain, SniPolicy behavior) {
  sni_rules_[util::to_lower(domain)] = behavior;
}

std::optional<SniPolicy> Policy::match_sni(const std::string& host) const {
  // Walk the label chain: "a.b.example.com" checks itself, then
  // "b.example.com", then "example.com", then "com". Registered rules apply
  // to subdomains, matching observed behavior (e.g. *.twitter.com).
  std::string needle = util::to_lower(host);
  for (;;) {
    auto it = sni_rules_.find(needle);
    if (it != sni_rules_.end()) return it->second;
    const std::size_t dot = needle.find('.');
    if (dot == std::string::npos) return std::nullopt;
    needle.erase(0, dot + 1);
  }
}

}  // namespace tspu::core
