#include "tspu/policy.h"

#include <algorithm>
#include <array>
#include <string_view>

#include "util/strings.h"

namespace tspu::core {
namespace {

using util::ascii_lower;

/// Writes `host` lowercased and reversed into `out` (no allocation for the
/// common SNI length). "A.Example.COM" -> "moc.elpmaxe.a".
std::string_view reverse_lower(std::string_view host,
                               std::array<char, 256>& out,
                               std::string& overflow) {
  if (host.size() <= out.size()) {
    for (std::size_t i = 0; i < host.size(); ++i) {
      out[host.size() - 1 - i] = ascii_lower(host[i]);
    }
    return std::string_view(out.data(), host.size());
  }
  overflow.assign(host.rbegin(), host.rend());
  for (char& c : overflow) c = ascii_lower(c);
  return overflow;
}

}  // namespace

void Policy::add_sni(const std::string& domain, SniPolicy behavior) {
  const std::string key = util::to_lower(domain);
  sni_rules_[key] = behavior;
  rules_by_suffix_[std::string(key.rbegin(), key.rend())] = behavior;
}

std::optional<SniPolicy> Policy::match_sni(std::string_view host) const {
  // Longest-prefix match over reversed keys replaces the old per-label walk
  // ("a.b.example.com" probed itself, then "b.example.com", ...): a rule
  // matches when its reversed form is a prefix of the reversed host ending
  // at a label boundary, and the LONGEST such prefix is exactly the most
  // specific registered parent domain — identical semantics, one lookup,
  // no per-label substring allocations.
  if (rules_by_suffix_.empty()) return std::nullopt;
  std::array<char, 256> buf;
  std::string overflow;
  const std::string_view rev = reverse_lower(host, buf, overflow);

  const auto begin = rules_by_suffix_.begin();  // consolidates: one sorted run
  std::string_view needle = rev;
  for (;;) {
    // Largest key <= needle. Any boundary-valid prefix of `rev` no longer
    // than `needle` sorts <= needle, so it can only be this candidate or a
    // prefix of it — shrinking the needle walks exactly those candidates,
    // longest first. The FlatMap's transparent comparator searches on the
    // string_view needle directly.
    auto it = rules_by_suffix_.upper_bound(needle);
    if (it == begin) return std::nullopt;
    --it;
    const std::string_view key(it->first);
    if (rev.substr(0, key.size()) == key) {
      if (key.size() == rev.size() || rev[key.size()] == '.')
        return it->second;
      // Prefix but not at a label boundary ("moc.elpmaxe" inside
      // "moc.elpmaxeton"): only shorter prefixes can still match.
      if (key.empty()) return std::nullopt;
      needle = rev.substr(0, key.size() - 1);
      continue;
    }
    // Shrink to the common prefix of candidate and needle; anything longer
    // cannot be a prefix of rev.
    const std::size_t common =
        std::mismatch(key.begin(), key.end(), needle.begin(), needle.end())
            .first -
        key.begin();
    if (common == 0) return std::nullopt;
    needle = rev.substr(0, common);
  }
}

}  // namespace tspu::core
