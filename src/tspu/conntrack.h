// TSPU connection tracking: role inference, state timeouts, blocking states.
//
// This implements the externally-observed state machine of §5.3.2/§5.3.3:
//  * The device infers "client"/"server" roles from the FIRST packet of a
//    flow and from literal SYN / SYN/ACK heuristics. SNI censorship only
//    applies when the LOCAL (inside-Russia) side is the effective client.
//  * A local SYN/ACK answering a previously-seen remote SYN REVERSES the
//    roles (the Split Handshake evasion, §8).
//  * Entries are evicted after state-dependent inactivity timeouts
//    (Table 2 / Table 8); blocking states have their own residual timeouts.
#pragma once

#include <compare>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>

#include "tspu/budget.h"
#include "tspu/timeouts.h"
#include "util/flat_map.h"
#include "util/ip.h"
#include "util/rng.h"
#include "util/time.h"
#include "wire/ipv4.h"
#include "wire/tcp.h"

namespace tspu::util {
class StateReader;
class StateWriter;
}  // namespace tspu::util

namespace tspu::core {

/// Flow identity from the device's fixed viewpoint: `local` is always the
/// inside (left/user-facing) endpoint.
struct FlowKey {
  util::Ipv4Addr local;
  util::Ipv4Addr remote;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;
  wire::IpProto proto = wire::IpProto::kTcp;

  /// Memberwise lexicographic order (local, remote, local_port, remote_port,
  /// proto) — identical to the defaulted comparison, but packed into two
  /// integer compares because the conntrack tree walk runs this a dozen
  /// times per packet.
  friend std::strong_ordering operator<=>(const FlowKey& a, const FlowKey& b) {
    const std::uint64_t ah =
        static_cast<std::uint64_t>(a.local.value()) << 32 | a.remote.value();
    const std::uint64_t bh =
        static_cast<std::uint64_t>(b.local.value()) << 32 | b.remote.value();
    if (ah != bh) return ah <=> bh;
    const std::uint64_t al =
        static_cast<std::uint64_t>(a.local_port) << 24 |
        static_cast<std::uint64_t>(a.remote_port) << 8 |
        static_cast<std::uint64_t>(a.proto);
    const std::uint64_t bl =
        static_cast<std::uint64_t>(b.local_port) << 24 |
        static_cast<std::uint64_t>(b.remote_port) << 8 |
        static_cast<std::uint64_t>(b.proto);
    return al <=> bl;
  }
  friend bool operator==(const FlowKey& a, const FlowKey& b) {
    return (a <=> b) == 0;
  }
};

enum class Initiator { kLocal, kRemote };

/// Conntrack state used ONLY to select the inactivity timeout; the blocking
/// decision uses initiator/reversed.
enum class ConnState {
  kLocalSynSent,   ///< local first packet, bare SYN
  kLocalOther,     ///< local first packet, anything else (e.g. bare SYN/ACK)
  kSynReceived,    ///< local-initiated, SYNs from both sides, no SYN/ACK yet
  kRemoteSynSent,  ///< remote first packet, bare SYN
  kRemoteOther,    ///< remote first packet, anything else
  kRoleReversed,   ///< local answered a remote SYN with SYN/ACK
  kEstablished,    ///< some side's SYN/ACK was ACKed by the other
};

/// Active blocking behavior attached to a flow.
enum class BlockMode {
  kNone,
  kSniRstAck,      ///< SNI-I
  kSniDelayedDrop, ///< SNI-II
  kSniThrottle,    ///< SNI-III
  kSniBackupDrop,  ///< SNI-IV
  kQuicDrop,
};

/// Trigger classes for per-flow failure-injection bookkeeping (Table 1).
enum class TriggerType : int {
  kSniI = 0,
  kSniII,
  kSniIII,
  kSniIV,
  kQuic,
  kIpBased,
  kCount_,
};

/// Stable lowercase state name, used in trace events and debug output.
const char* conn_state_name(ConnState s);

/// "local:port>remote:port/proto" — the flow rendering used by trace events.
std::string flow_str(const FlowKey& key);

struct ConnEntry {
  ConnState state = ConnState::kLocalOther;
  Initiator initiator = Initiator::kLocal;
  bool reversed = false;
  bool seen_local_syn = false;
  bool seen_remote_syn = false;
  bool seen_local_synack = false;
  bool seen_remote_synack = false;
  util::Instant last_update;

  // ---- blocking ----
  BlockMode block = BlockMode::kNone;
  util::Instant block_last_activity;
  int grace_remaining = 0;          ///< SNI-II grace packets (5-8)
  double throttle_tokens = 0;       ///< SNI-III bucket level (bytes)
  util::Instant throttle_refilled;
  // Failure-injection memo: one Bernoulli draw per flow per trigger type.
  std::uint8_t failure_drawn_mask = 0;
  std::uint8_t failure_result_mask = 0;

  // ---- optional TCP stream reassembly (§8 "patched" capability) ----
  util::Bytes upstream_stream;   ///< accumulated upstream payload bytes
  bool stream_overflow = false;  ///< gave up after the cap

  /// True when the SNI/IP censorship rules may act on this flow: the local
  /// side must look like the client.
  bool local_is_effective_client() const {
    return initiator == Initiator::kLocal && !reversed;
  }
};

/// The tracker. One instance per TSPU device (state is per-box, which is why
/// paths with two devices need both to fail, §5.2.1).
class ConnTracker {
 public:
  /// Reference-stability contract: track_tcp/track_udp/find hand out
  /// references and pointers into the table that callers (Device::handle_tcp
  /// and friends) hold across FURTHER tracker calls on other flows — so the
  /// table must be node-stable under insert and unrelated erase. std::map
  /// guarantees that; util::FlatMap (used in the netsim hot paths since its
  /// PR-2 introduction) does NOT: its vector storage reallocates on insert
  /// and its tail merge moves elements. The static_assert below turns a
  /// well-meaning "FlatMap is faster" swap into a compile error instead of
  /// silent dangling references.
  using Table = std::map<FlowKey, ConnEntry>;
  static_assert(!util::is_flat_map<Table>,
                "ConnTracker::Table must be node-stable: track_tcp/track_udp "
                "return references held across later inserts");


  /// `strict_roles` models the §8 patch "handling Simultaneous Open or Split
  /// Handshake simply requires reasoning about the roles of Client and
  /// Server in a more ad-hoc way": a local SYN/ACK answering a remote SYN
  /// no longer flips the roles.
  explicit ConnTracker(ConntrackTimeouts timeouts, BlockingTimeouts blocking,
                       bool strict_roles = false)
      : timeouts_(timeouts), blocking_(blocking), strict_roles_(strict_roles) {}

  /// Installs (or replaces) the capacity budget and the overload policy's
  /// hysteresis band. max_entries caps the table; max_bytes caps the
  /// device-wide reassembled stream footprint (charge_stream). Defined
  /// out-of-line so the budget/gauge pairing is visible to tspulint.
  void set_budget(TableBudget budget, OverloadPolicy overload);
  const TableBudget& budget() const { return budget_; }

  /// Reseeds the eviction RNG stream and drops the overload latch. Called
  /// by Device::reseed at trial boundaries (stateless splitmix64-derived
  /// seed) so eviction choices depend only on the item's own seed.
  void reseed_eviction(std::uint64_t seed) {
    evict_rng_.reseed(seed);
    overload_state_.reset();
  }

  /// True while the RejectNew hysteresis latch is set (budgeted tables
  /// only); the device consults this for its fail-open/fail-closed action.
  bool overloaded() const { return overload_state_.overloaded(); }

  /// Observes a TCP packet and returns the (created/updated) entry after
  /// applying state transitions and expiry. `from_local` = packet travels
  /// local -> remote (upstream). Returns nullptr when admission was
  /// REJECTED (RejectNew policy at capacity) — the caller owns the
  /// overload response. Existing flows are always updated.
  ConnEntry* admit_tcp(const FlowKey& key, wire::TcpFlags flags,
                       bool from_local, util::Instant now);

  /// admit_tcp for configurations that never reject (unbounded or evicting
  /// budgets): keeps the original reference-returning contract; rejection
  /// here is a caller error (TSPU_CHECK).
  ConnEntry& track_tcp(const FlowKey& key, wire::TcpFlags flags,
                       bool from_local, util::Instant now);

  /// Observes a UDP packet (QUIC tracking). Creates an entry only when one
  /// already exists or `create` is set (we only materialize UDP state when a
  /// block begins, to mirror the device's narrow UDP interest). With
  /// `create`, nullptr additionally means the admission was rejected.
  ConnEntry* track_udp(const FlowKey& key, bool from_local, util::Instant now,
                       bool create = false);

  /// Looks up without modifying (still applies expiry). nullptr when absent.
  ConnEntry* find(const FlowKey& key, util::Instant now);

  /// Raw table size including entries whose lazy eviction hasn't run yet.
  /// Budget accounting never uses this — see live_size().
  std::size_t size() const { return table_.size(); }

  /// Exact live occupancy: runs the lazy-eviction sweep first, so the
  /// result is what the device's memory footprint actually is at `now`.
  /// This is the number the occupancy gauge and admission control see.
  std::size_t live_size(util::Instant now) { return live_entries(now); }

  /// Sweeps expired entries and returns the live count (live_size's
  /// historical name, kept for existing call sites).
  std::size_t live_entries(util::Instant now);

  /// Charges `add` reassembled stream bytes against the byte budget.
  /// Returns false — charging nothing — when the device-wide footprint
  /// would exceed TableBudget::max_bytes; the caller then abandons
  /// reassembly for the flow (stream_overflow).
  bool charge_stream(std::size_t add);

  /// Clears an entry's reassembled stream and returns its bytes to the
  /// budget. All stream-clearing must go through here so the device-wide
  /// byte accounting stays exact.
  void release_stream(ConnEntry& entry);

  /// Total reassembled stream bytes currently charged across the table.
  std::size_t stream_bytes() const { return stream_bytes_; }

  /// TSPU_AUDIT sweep (debug builds): entry clocks never run ahead of the
  /// simulator, role-reversal and established states are consistent with the
  /// SYN/SYN-ACK history, SNI-II grace counts stay in the paper's 5-8 range,
  /// and failure draws precede failure results.
  void audit(util::Instant now) const;

  util::Duration state_timeout(ConnState s) const;
  util::Duration block_timeout(BlockMode m) const;

  /// Checkpoint serialization: every entry plus the overload latch and the
  /// eviction RNG cursor. Construction-time config (timeouts, budget,
  /// strict_roles) is NOT serialized — it belongs to the replica config.
  void save_state(util::StateWriter& w) const;

  /// Replaces the table with a saved one; false on truncated input,
  /// out-of-range enums, or duplicate flow keys. stream_bytes_ is
  /// recomputed from the restored entries, never trusted from the wire.
  bool load_state(util::StateReader& r);

 private:
  bool expired(const ConnEntry& e, util::Instant now) const;
  /// Erases every expired entry WITHOUT publishing occupancy (the caller
  /// decides when to note_occupancy, breaking the mutual recursion between
  /// sweeping and gauge publication). Returns whether anything was erased.
  bool sweep_expired(util::Instant now);
  /// Admission control for a new entry: sweeps expired entries, then at
  /// capacity either evicts per policy (returns true) or rejects (false).
  bool make_room(util::Instant now);
  /// Erases one entry as an eviction (counted + traced with `reason`).
  void evict(Table::iterator it, util::Instant now, const char* reason);
  /// Publishes the occupancy gauge and drives the overload hysteresis
  /// latch; called after every occupancy change on a budgeted table.
  void note_occupancy(util::Instant now);

  ConntrackTimeouts timeouts_;
  BlockingTimeouts blocking_;
  bool strict_roles_ = false;
  TableBudget budget_;
  OverloadPolicy overload_;
  OverloadState overload_state_;
  /// Eviction choices for kEvictRandom; reseeded per trial via
  /// reseed_eviction so draws never leak across work items.
  util::Rng evict_rng_{0xb06d0ull};
  /// Device-wide reassembled stream bytes currently buffered (the TCP
  /// reassembly footprint the byte budget polices).
  std::size_t stream_bytes_ = 0;
  Table table_;
  /// Resume point for audit()'s bounded rotating sweep (Debug builds only;
  /// mutable because auditing observes, never mutates, tracked state).
  mutable FlowKey audit_cursor_{};
};

}  // namespace tspu::core
