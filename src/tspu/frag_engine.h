// The TSPU's IP-fragment handling (§5.3.1): buffer fragments, forward them
// individually (never reassembled) once the datagram is complete, rewriting
// every fragment's TTL to the TTL the FIRST (offset-0) fragment arrived with.
//
// Restrictions enforced, all observed in the paper and all used as remote
// fingerprints in §7.2:
//  * duplicate or overlapping fragment  -> whole queue discarded
//  * more than 45 fragments in a queue  -> whole queue discarded
//  * queue incomplete after ~5 seconds  -> whole queue discarded
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "tspu/budget.h"
#include "tspu/timeouts.h"
#include "util/rng.h"
#include "util/time.h"
#include "wire/fragment.h"
#include "wire/ipv4.h"

namespace tspu::util {
class StateReader;
class StateWriter;
}  // namespace tspu::util

namespace tspu::core {

struct FragEngineStats {
  std::uint64_t fragments_buffered = 0;
  std::uint64_t queues_released = 0;
  std::uint64_t queues_discarded_overlap = 0;
  std::uint64_t queues_discarded_limit = 0;
  std::uint64_t queues_discarded_timeout = 0;
  std::uint64_t queues_discarded_overlong = 0;
  // ---- budget accounting (zero while unbounded) ----
  std::uint64_t queues_evicted = 0;      ///< whole queues evicted at capacity
  std::uint64_t fragments_rejected = 0;  ///< fragments refused admission
};

class FragmentEngine {
 public:
  explicit FragmentEngine(FragmentTimeouts cfg) : cfg_(cfg) {}

  /// Installs (or replaces) the capacity budget and overload hysteresis
  /// band: max_entries caps in-flight queues, max_bytes the total buffered
  /// fragment payload. Defined out-of-line so the budget/gauge pairing is
  /// visible to tspulint.
  void set_budget(TableBudget budget, OverloadPolicy overload);
  const TableBudget& budget() const { return budget_; }

  /// Reseeds the eviction RNG stream and drops the overload latch
  /// (Device::reseed, trial boundaries).
  void reseed_eviction(std::uint64_t seed) {
    evict_rng_.reseed(seed);
    overload_state_.reset();
  }

  bool overloaded() const { return overload_state_.overloaded(); }

  /// Feeds one fragment. Returns the packets to forward NOW: empty while
  /// buffering or discarding; the full fragment set (TTL-rewritten, in
  /// arrival order) when the last hole fills. When the budget REJECTS the
  /// fragment (RejectNew at capacity), returns the original fragment and
  /// sets *rejected — the device then applies its overload policy to it
  /// instead of treating it as a release.
  std::vector<wire::Packet> push(wire::Packet frag, util::Instant now,
                                 bool* rejected = nullptr);

  /// Discards queues older than the 5-second limit. push() arranges to call
  /// this lazily — exactly when some queue has actually timed out — instead
  /// of sweeping every queue on every fragment, which made fragmentation
  /// scans quadratic in in-flight queues. Explicit calls still sweep fully.
  void expire(util::Instant now);

  /// TSPU_AUDIT sweep (debug builds): every queue holds at most the paper's
  /// 45-fragment limit, ranges mirror the buffered fragments with no
  /// overlaps, and no queue started in the future.
  void audit(util::Instant now) const;

  std::size_t pending_queues() const { return queues_.size(); }
  /// Total buffered fragment payload bytes — what max_bytes polices.
  std::size_t buffered_bytes() const { return buffered_bytes_; }
  const FragEngineStats& stats() const { return stats_; }

  /// Checkpoint serialization: stats, every pending queue, the overload
  /// latch, and the eviction RNG cursor. Timeout/budget config excluded
  /// (replica construction owns it). Per-queue ranges/byte counts are
  /// derived from the fragments, so they are recomputed on load rather
  /// than trusted from the wire.
  void save_state(util::StateWriter& w) const;

  /// Replaces the engine's runtime state with a saved one; false on
  /// truncation, out-of-range values, or duplicate queue keys.
  bool load_state(util::StateReader& r);

 private:
  struct Queue {
    std::vector<wire::Packet> fragments;  // arrival order
    std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
    util::Instant started;
    std::optional<std::uint8_t> first_ttl;  ///< TTL of the offset-0 fragment
    bool saw_last = false;
    std::uint32_t total_len = 0;
    std::size_t bytes = 0;  ///< buffered payload bytes (budget accounting)
  };

  bool complete(const Queue& q) const;
  void discard(const wire::FragmentKey& key, util::Instant now,
               const char* reason, std::uint64_t& stat);
  /// Admission control before buffering: sweeps timed-out queues, then at
  /// capacity evicts whole queues per policy or rejects the fragment.
  bool make_room(util::Instant now, bool new_queue, std::size_t add_bytes);
  /// Evicts one whole queue (counted + traced with `reason`).
  void evict_one(util::Instant now, const char* reason);
  /// Publishes the occupancy gauge and drives the overload latch.
  void note_occupancy(util::Instant now);

  FragmentTimeouts cfg_;
  FragEngineStats stats_;
  TableBudget budget_;
  OverloadPolicy overload_;
  OverloadState overload_state_;
  /// Eviction choices for kEvictRandom; reseeded per trial.
  util::Rng evict_rng_{0xf4a6ull};
  std::size_t buffered_bytes_ = 0;
  std::map<wire::FragmentKey, Queue> queues_;
  /// Start time of the oldest queue at the last full sweep — the lazy-expiry
  /// trigger. May be stale (pointing at an already-erased queue) after
  /// release/discard, which only ever makes a sweep run EARLY; a sweep runs
  /// no later than the first push at which any queue has timed out, because
  /// the oldest queue times out no later than any other.
  std::optional<util::Instant> oldest_started_;
  /// Resume point for audit()'s bounded rotating sweep (Debug builds only).
  mutable wire::FragmentKey audit_cursor_{};
};

}  // namespace tspu::core
