// Capacity budgets and overload policies for the TSPU's per-device state
// tables (conntrack, fragment queues, TCP stream reassembly).
//
// The paper's devices are inline stateful middleboxes serving millions of
// users; their per-flow state cannot actually be unbounded. This header
// makes resource exhaustion a first-class, deterministic failure mode:
//  * TableBudget caps a table's entry count and byte footprint; the default
//    (both zero) is "unbounded" and reproduces the pre-budget device
//    byte-for-byte, including its obs output.
//  * EvictionPolicy selects what happens at capacity: evict the oldest
//    entry, evict a splitmix64-seeded random entry, or reject the new one.
//  * OverloadPolicy picks the device's behavior toward traffic it REJECTED
//    (RejectNew only): fail-open forwards uninspected (forging false-allows,
//    mirroring the fail-open flap semantics in netsim::DeviceFaultPlan) or
//    fail-closed drops (forging false-blocks). Hysteresis — enter at a
//    high-water fraction, exit at a low-water fraction — keeps the verdict
//    stable instead of flapping per packet at the boundary.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netsim/faults.h"

namespace tspu::core {

/// What a full table does with the entry that no longer fits.
enum class EvictionPolicy {
  kEvictOldest,  ///< evict the least-recently-updated entry, admit the new
  kEvictRandom,  ///< evict a uniformly random entry (per-device RNG stream)
  kRejectNew,    ///< keep existing entries; reject the new one (overload)
};

/// Stable lowercase policy name, used in trace events and bench output.
const char* eviction_policy_name(EvictionPolicy p);

/// Capacity budget for one state table. Zero means "unbounded" on that
/// axis; a default-constructed budget is the pre-budget device.
struct TableBudget {
  std::size_t max_entries = 0;  ///< entry/queue cap (0 = unbounded)
  std::size_t max_bytes = 0;    ///< byte footprint cap (0 = unbounded)
  EvictionPolicy policy = EvictionPolicy::kEvictOldest;

  bool bounded() const { return max_entries != 0 || max_bytes != 0; }
};

/// Device-level response to a rejected admission, plus the hysteresis band
/// for the overload flag. Fractions are of TableBudget::max_entries.
struct OverloadPolicy {
  /// kFailOpen forwards rejected traffic uninspected; kFailClosed eats it.
  netsim::DeviceFailMode mode = netsim::DeviceFailMode::kFailOpen;
  double enter_fraction = 1.0;  ///< overload begins at occupancy >= this
  double exit_fraction = 0.9;   ///< overload ends at occupancy <= this
};

/// The hysteresis latch: one per budgeted table. update() is called after
/// every occupancy change and reports whether the flag flipped so the table
/// can emit exactly one enter/exit trace event per transition.
class OverloadState {
 public:
  /// Returns true when the overloaded flag changed state.
  bool update(std::size_t occupancy, std::size_t max_entries,
              const OverloadPolicy& policy) {
    if (max_entries == 0) return false;
    const double frac =
        static_cast<double>(occupancy) / static_cast<double>(max_entries);
    if (!overloaded_ && frac >= policy.enter_fraction) {
      overloaded_ = true;
      return true;
    }
    if (overloaded_ && frac <= policy.exit_fraction) {
      overloaded_ = false;
      return true;
    }
    return false;
  }

  bool overloaded() const { return overloaded_; }
  void reset() { overloaded_ = false; }

  /// Checkpoint hook: restores a saved latch without emitting a transition
  /// (the enter/exit events already happened before the snapshot).
  void restore(bool overloaded) { overloaded_ = overloaded; }

 private:
  bool overloaded_ = false;
};

}  // namespace tspu::core
