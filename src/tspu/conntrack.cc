#include "tspu/conntrack.h"

#include <iterator>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/statecodec.h"

namespace tspu::core {

const char* conn_state_name(ConnState s) {
  switch (s) {
    case ConnState::kLocalSynSent: return "local_syn_sent";
    case ConnState::kLocalOther: return "local_other";
    case ConnState::kSynReceived: return "syn_received";
    case ConnState::kRemoteSynSent: return "remote_syn_sent";
    case ConnState::kRemoteOther: return "remote_other";
    case ConnState::kRoleReversed: return "role_reversed";
    case ConnState::kEstablished: return "established";
  }
  return "?";
}

std::string flow_str(const FlowKey& key) {
  return key.local.str() + ":" + std::to_string(key.local_port) + ">" +
         key.remote.str() + ":" + std::to_string(key.remote_port) +
         (key.proto == wire::IpProto::kUdp ? "/udp" : "/tcp");
}

namespace {

/// Trace one conntrack transition; the counter is unconditional so Release
/// invariants can be checked without event tracing enabled.
void note_transition(const FlowKey& key, const ConnEntry& e,
                     util::Instant now) {
  TSPU_OBS_COUNT("tspu.conntrack.transition");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kConntrack, "conn.state", now, flow_str(key),
                     conn_state_name(e.state));
  }
}

}  // namespace

void ConnTracker::set_budget(TableBudget budget, OverloadPolicy overload) {
  budget_ = budget;
  overload_ = overload;
  overload_state_.reset();
}

void ConnTracker::note_occupancy(util::Instant now) {
  // Everything here is gated on bounded(): an unbounded tracker must keep
  // its obs output byte-identical to the pre-budget device.
  if (!budget_.bounded()) return;
  // Reconcile lazy expiry first: the gauge and the overload latch must
  // never observe entries that are already past their timeout but unswept,
  // or a burst of long-dead flows could latch `overload.enter` (and reject
  // admissions) on a table that is actually near-empty.
  sweep_expired(now);
  if (obs::Recorder* rec = obs::recorder()) {
    rec->metrics.gauge("tspu.conntrack.occupancy")
        .set_max(static_cast<std::int64_t>(table_.size()));
  }
  if (overload_state_.update(table_.size(), budget_.max_entries, overload_)) {
    const std::string detail = std::to_string(table_.size()) + "/" +
                               std::to_string(budget_.max_entries);
    if (overload_state_.overloaded()) {
      TSPU_OBS_COUNT("tspu.conntrack.overload.enter");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kConntrack, "overload.enter", now, {},
                         detail);
      }
    } else {
      TSPU_OBS_COUNT("tspu.conntrack.overload.exit");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kConntrack, "overload.exit", now, {},
                         detail);
      }
    }
  }
}

void ConnTracker::evict(Table::iterator it, util::Instant now,
                        const char* reason) {
  stream_bytes_ -= it->second.upstream_stream.size();
  TSPU_OBS_COUNT("tspu.conntrack.evicted");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kConntrack, "conn.evict", now,
                     flow_str(it->first), reason);
  }
  table_.erase(it);
  // Evictions shrink the table: re-publish occupancy and let the overload
  // hysteresis exit. Without this, a table drained purely by eviction
  // stayed latched forever (the latch was only re-evaluated on admit).
  note_occupancy(now);
}

bool ConnTracker::make_room(util::Instant now) {
  if (budget_.max_entries == 0) return true;
  // Reclaim lazily-expired entries and re-evaluate the hysteresis latch
  // BEFORE any admission decision — not just at capacity. A latch set by
  // entries that have since expired must exit here rather than reject new
  // flows against dead state (shrink-only workloads previously never
  // re-evaluated it and stayed overloaded forever).
  live_entries(now);
  if (budget_.policy == EvictionPolicy::kRejectNew) {
    // Reject while the hysteresis latch is set (it enters at the
    // high-water fraction and exits at the low-water one), and always
    // reject when genuinely full — occupancy may never exceed the budget.
    if (overload_state_.overloaded() ||
        table_.size() >= budget_.max_entries) {
      TSPU_OBS_COUNT("tspu.conntrack.rejected");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kConntrack, "conn.reject", now, {},
                         std::to_string(table_.size()) + "/" +
                             std::to_string(budget_.max_entries));
      }
      return false;
    }
    return true;
  }
  while (table_.size() >= budget_.max_entries) {
    if (budget_.policy == EvictionPolicy::kEvictRandom) {
      auto it = table_.begin();
      std::advance(it, static_cast<std::ptrdiff_t>(evict_rng_.next() %
                                                   table_.size()));
      evict(it, now, "random");
    } else {
      auto victim = table_.begin();
      for (auto it = std::next(table_.begin()); it != table_.end(); ++it) {
        if (it->second.last_update < victim->second.last_update) victim = it;
      }
      evict(victim, now, "oldest");
    }
  }
  return true;
}

bool ConnTracker::charge_stream(std::size_t add) {
  if (budget_.max_bytes != 0 && stream_bytes_ + add > budget_.max_bytes) {
    TSPU_OBS_COUNT("tspu.conntrack.stream_rejected");
    return false;
  }
  stream_bytes_ += add;
  return true;
}

void ConnTracker::release_stream(ConnEntry& entry) {
  TSPU_DCHECK(stream_bytes_ >= entry.upstream_stream.size(),
              "stream bytes released that were never charged");
  stream_bytes_ -= entry.upstream_stream.size();
  entry.upstream_stream.clear();
}

void ConnTracker::audit(util::Instant now) const {
  // Bounded rotating sweep: this runs after EVERY simulator event in Debug
  // builds, so a full-table pass would make big scenarios quadratic
  // (events x flows). Each call audits up to kAuditSlice entries and
  // resumes where the previous call stopped; every entry is still audited
  // once every ceil(size / kAuditSlice) events.
  constexpr std::size_t kAuditSlice = 16;
  // Budget invariants: admission control runs before every insert and
  // erases only shrink the table, so occupancy can never exceed the
  // budget after ANY sim event; same for the reassembly byte footprint.
  if (budget_.max_entries != 0) {
    TSPU_AUDIT(table_.size() <= budget_.max_entries,
               "conntrack occupancy exceeds the entry budget");
  }
  if (budget_.max_bytes != 0) {
    TSPU_AUDIT(stream_bytes_ <= budget_.max_bytes,
               "reassembled stream bytes exceed the byte budget");
  }
  auto it = table_.lower_bound(audit_cursor_);
  for (std::size_t n = 0; n < kAuditSlice && !table_.empty(); ++n) {
    if (it == table_.end()) it = table_.begin();
    const auto& [key, e] = *it;
    ++it;
    TSPU_AUDIT(e.last_update <= now, "conntrack entry updated in the future");
    if (e.block != BlockMode::kNone) {
      TSPU_AUDIT(e.block_last_activity <= now,
                 "blocking state refreshed in the future");
    }
    if (e.block == BlockMode::kSniDelayedDrop) {
      // sni_ii_grace_packets() yields 5-8; apply_block only decrements.
      TSPU_AUDIT(e.grace_remaining >= 0 && e.grace_remaining <= 8,
                 "SNI-II grace count outside the paper's 5-8 range");
    }
    // A failure result is only recorded for draws that actually happened.
    TSPU_AUDIT((e.failure_result_mask & ~e.failure_drawn_mask) == 0,
               "failure result without a matching Bernoulli draw");
    if (e.reversed) {
      TSPU_AUDIT(e.seen_remote_syn && e.seen_local_synack,
                 "role reversal without the split-handshake exchange");
    }
    if (key.proto == wire::IpProto::kUdp) {
      TSPU_AUDIT(e.state == ConnState::kEstablished,
                 "UDP entries have no TCP handshake states");
    } else if (e.state == ConnState::kEstablished) {
      TSPU_AUDIT(e.seen_local_synack || e.seen_remote_synack,
                 "established TCP flow without any SYN/ACK observed");
    }
  }
  audit_cursor_ = it == table_.end() ? FlowKey{} : it->first;
}

util::Duration ConnTracker::state_timeout(ConnState s) const {
  switch (s) {
    case ConnState::kLocalSynSent: return timeouts_.local_syn_sent;
    case ConnState::kLocalOther: return timeouts_.local_other;
    case ConnState::kSynReceived: return timeouts_.syn_received;
    case ConnState::kRemoteSynSent: return timeouts_.remote_syn_sent;
    case ConnState::kRemoteOther: return timeouts_.remote_other;
    case ConnState::kRoleReversed: return timeouts_.role_reversed;
    case ConnState::kEstablished: return timeouts_.established;
  }
  return timeouts_.established;
}

util::Duration ConnTracker::block_timeout(BlockMode m) const {
  switch (m) {
    case BlockMode::kSniRstAck: return blocking_.sni_i;
    case BlockMode::kSniDelayedDrop: return blocking_.sni_ii;
    case BlockMode::kSniThrottle: return blocking_.sni_ii;  // policed like II
    case BlockMode::kSniBackupDrop: return blocking_.sni_iv;
    case BlockMode::kQuicDrop: return blocking_.quic;
    case BlockMode::kNone: break;
  }
  return util::Duration::seconds(0);
}

bool ConnTracker::expired(const ConnEntry& e, util::Instant now) const {
  if (e.block != BlockMode::kNone) {
    // Residual censorship outlives the ordinary conntrack timeout; the
    // blocking state has its own clock, refreshed by matching traffic.
    return now - e.block_last_activity > block_timeout(e.block);
  }
  return now - e.last_update > state_timeout(e.state);
}

bool ConnTracker::sweep_expired(util::Instant now) {
  bool erased = false;
  for (auto it = table_.begin(); it != table_.end();) {
    if (expired(it->second, now)) {
      TSPU_OBS_COUNT("tspu.conntrack.expired");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kConntrack, "conn.expire", now,
                         flow_str(it->first), "sweep");
      }
      stream_bytes_ -= it->second.upstream_stream.size();
      it = table_.erase(it);
      erased = true;
    } else {
      ++it;
    }
  }
  return erased;
}

std::size_t ConnTracker::live_entries(util::Instant now) {
  if (sweep_expired(now)) note_occupancy(now);
  return table_.size();
}

ConnEntry* ConnTracker::find(const FlowKey& key, util::Instant now) {
  auto it = table_.find(key);
  if (it == table_.end()) return nullptr;
  if (expired(it->second, now)) {
    TSPU_OBS_COUNT("tspu.conntrack.expired");
    if (obs::tracing()) {
      obs::trace_event(obs::Layer::kConntrack, "conn.expire", now,
                       flow_str(key), "lazy");
    }
    stream_bytes_ -= it->second.upstream_stream.size();
    table_.erase(it);
    note_occupancy(now);
    return nullptr;
  }
  return &it->second;
}

ConnEntry& ConnTracker::track_tcp(const FlowKey& key, wire::TcpFlags flags,
                                  bool from_local, util::Instant now) {
  ConnEntry* entry = admit_tcp(key, flags, from_local, now);
  TSPU_CHECK(entry != nullptr,
             "track_tcp on a rejecting tracker: use admit_tcp and handle "
             "nullptr when the budget policy is RejectNew");
  return *entry;
}

ConnEntry* ConnTracker::admit_tcp(const FlowKey& key, wire::TcpFlags flags,
                                  bool from_local, util::Instant now) {
  // Single-traversal admission on the per-packet hot path: one lower_bound
  // locates the flow, handles its lazy expiry, and doubles as the insertion
  // hint for a fresh entry — the old find() + operator[] walked the tree
  // twice (three times counting the expiry erase) per new flow.
  auto it = table_.lower_bound(key);
  bool present = it != table_.end() && !table_.key_comp()(key, it->first);
  ConnEntry* reuse = nullptr;
  if (present && expired(it->second, now)) {
    TSPU_OBS_COUNT("tspu.conntrack.expired");
    if (obs::tracing()) {
      obs::trace_event(obs::Layer::kConntrack, "conn.expire", now,
                       flow_str(key), "lazy");
    }
    stream_bytes_ -= it->second.upstream_stream.size();
    if (!budget_.bounded()) {
      // Unbounded table: the fresh entry below is guaranteed admission at
      // this exact key and note_occupancy is a no-op, so the node is reused
      // in place — no erase/insert rebalance and no allocator round-trip.
      // Counters, traces, and the resulting table are identical to the
      // erase + re-insert the bounded path still performs.
      reuse = &it->second;
    } else {
      // Bounded table: note_occupancy may sweep other expired entries and
      // flip the overload latch, which the admission decision below must
      // observe — and the sweep can invalidate `it`, so the insert falls
      // back to the hint-free path.
      it = table_.erase(it);
      note_occupancy(now);
    }
    present = false;
  }
  if (!present) {
    // First packet of the flow determines the initiator — the heuristic the
    // paper exploits (§5.3.2): censorship depends on which machine sends the
    // first packet the device sees.
    ConnEntry fresh;
    fresh.initiator = from_local ? Initiator::kLocal : Initiator::kRemote;
    if (from_local) {
      fresh.state = flags.is_syn_only() ? ConnState::kLocalSynSent
                                        : ConnState::kLocalOther;
    } else {
      fresh.state = flags.is_syn_only() ? ConnState::kRemoteSynSent
                                        : ConnState::kRemoteOther;
    }
    fresh.seen_local_syn = from_local && flags.syn() && !flags.ack();
    fresh.seen_remote_syn = !from_local && flags.syn() && !flags.ack();
    fresh.seen_local_synack = from_local && flags.is_syn_ack();
    fresh.seen_remote_synack = !from_local && flags.is_syn_ack();
    fresh.last_update = now;
    ConnEntry* created = nullptr;
    if (reuse != nullptr) {
      *reuse = std::move(fresh);
      created = reuse;
    } else if (!budget_.bounded()) {
      // Unbounded table: make_room is a no-op and cannot invalidate the
      // hint, so the insert reuses the lower_bound position directly.
      created = &table_.emplace_hint(it, key, std::move(fresh))->second;
    } else {
      // Bounded table: make_room (and the note_occupancy sweep above) may
      // erase arbitrary entries, invalidating the hint — two-step insert.
      if (!make_room(now)) return nullptr;
      created = &(table_[key] = std::move(fresh));
    }
    TSPU_OBS_COUNT("tspu.conntrack.created");
    if (obs::tracing()) {
      obs::trace_event(obs::Layer::kConntrack, "conn.create", now,
                       flow_str(key), conn_state_name(created->state));
    }
    note_occupancy(now);
    return created;
  }

  ConnEntry& e = it->second;
  e.last_update = now;

  if (flags.is_syn_only()) {
    (from_local ? e.seen_local_syn : e.seen_remote_syn) = true;
  } else if (flags.is_syn_ack()) {
    (from_local ? e.seen_local_synack : e.seen_remote_synack) = true;
    if (from_local && e.seen_remote_syn && !strict_roles_) {
      // Local answered a remote SYN with SYN/ACK: by the literal-SYN
      // heuristic, the local machine is now the "server" — roles reverse
      // and SNI-I style blocking stops applying (§8 Split Handshake).
      // A strict-roles device keeps the first-packet initiator instead.
      e.reversed = true;
      e.state = ConnState::kRoleReversed;
      TSPU_OBS_COUNT("tspu.conntrack.reversed");
      note_transition(key, e, now);
      return &e;
    }
  }

  // Handshake completion: an ACK from the side that did NOT send the
  // SYN/ACK, after a SYN/ACK was seen.
  const bool completes_handshake =
      flags.ack() && !flags.syn() &&
      ((from_local && e.seen_remote_synack) ||
       (!from_local && e.seen_local_synack));
  if (completes_handshake) {
    if (e.state != ConnState::kEstablished) {
      e.state = ConnState::kEstablished;
      note_transition(key, e, now);
    }
    return &e;
  }

  // Local-initiated simultaneous open: both sides have sent bare SYNs but
  // nobody a SYN/ACK yet (Table 2's SYN-RECEIVED sequence).
  if (!e.reversed && e.initiator == Initiator::kLocal && e.seen_local_syn &&
      e.seen_remote_syn && !e.seen_local_synack && !e.seen_remote_synack) {
    if (e.state != ConnState::kSynReceived) {
      e.state = ConnState::kSynReceived;
      note_transition(key, e, now);
    }
  }
  return &e;
}

void ConnTracker::save_state(util::StateWriter& w) const {
  w.u32(static_cast<std::uint32_t>(table_.size()));
  for (const auto& [key, e] : table_) {
    w.u32(key.local.value());
    w.u32(key.remote.value());
    w.u16(key.local_port);
    w.u16(key.remote_port);
    w.u8(static_cast<std::uint8_t>(key.proto));
    w.u8(static_cast<std::uint8_t>(e.state));
    w.u8(static_cast<std::uint8_t>(e.initiator));
    w.boolean(e.reversed);
    w.boolean(e.seen_local_syn);
    w.boolean(e.seen_remote_syn);
    w.boolean(e.seen_local_synack);
    w.boolean(e.seen_remote_synack);
    w.i64(e.last_update.as_micros());
    w.u8(static_cast<std::uint8_t>(e.block));
    w.i64(e.block_last_activity.as_micros());
    w.i64(e.grace_remaining);
    w.f64(e.throttle_tokens);
    w.i64(e.throttle_refilled.as_micros());
    w.u8(e.failure_drawn_mask);
    w.u8(e.failure_result_mask);
    w.bytes(e.upstream_stream);
    w.boolean(e.stream_overflow);
  }
  w.boolean(overload_state_.overloaded());
  for (const std::uint64_t lane : evict_rng_.state()) w.u64(lane);
}

bool ConnTracker::load_state(util::StateReader& r) {
  Table loaded;
  std::size_t loaded_stream_bytes = 0;
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    FlowKey key;
    std::uint32_t local = 0;
    std::uint32_t remote = 0;
    std::uint8_t proto = 0;
    if (!r.u32(local) || !r.u32(remote) || !r.u16(key.local_port) ||
        !r.u16(key.remote_port) || !r.u8(proto)) {
      return false;
    }
    if (proto != static_cast<std::uint8_t>(wire::IpProto::kTcp) &&
        proto != static_cast<std::uint8_t>(wire::IpProto::kUdp)) {
      return false;
    }
    key.local = util::Ipv4Addr(local);
    key.remote = util::Ipv4Addr(remote);
    key.proto = static_cast<wire::IpProto>(proto);

    ConnEntry e;
    std::uint8_t state = 0;
    std::uint8_t initiator = 0;
    std::uint8_t block = 0;
    std::int64_t last_update_us = 0;
    std::int64_t block_last_us = 0;
    std::int64_t grace = 0;
    std::int64_t refilled_us = 0;
    if (!r.u8(state) || !r.u8(initiator) || !r.boolean(e.reversed) ||
        !r.boolean(e.seen_local_syn) || !r.boolean(e.seen_remote_syn) ||
        !r.boolean(e.seen_local_synack) || !r.boolean(e.seen_remote_synack) ||
        !r.i64(last_update_us) || !r.u8(block) || !r.i64(block_last_us) ||
        !r.i64(grace) || !r.f64(e.throttle_tokens) || !r.i64(refilled_us) ||
        !r.u8(e.failure_drawn_mask) || !r.u8(e.failure_result_mask) ||
        !r.bytes_into(e.upstream_stream) || !r.boolean(e.stream_overflow)) {
      return false;
    }
    if (state > static_cast<std::uint8_t>(ConnState::kEstablished) ||
        initiator > static_cast<std::uint8_t>(Initiator::kRemote) ||
        block > static_cast<std::uint8_t>(BlockMode::kQuicDrop)) {
      return false;
    }
    e.state = static_cast<ConnState>(state);
    e.initiator = static_cast<Initiator>(initiator);
    e.block = static_cast<BlockMode>(block);
    e.last_update = util::Instant::from_micros(last_update_us);
    e.block_last_activity = util::Instant::from_micros(block_last_us);
    e.grace_remaining = static_cast<int>(grace);
    e.throttle_refilled = util::Instant::from_micros(refilled_us);
    loaded_stream_bytes += e.upstream_stream.size();
    if (!loaded.emplace(key, std::move(e)).second) return false;
  }
  bool latched = false;
  std::array<std::uint64_t, 4> rng_state{};
  if (!r.boolean(latched)) return false;
  for (std::uint64_t& lane : rng_state) {
    if (!r.u64(lane)) return false;
  }
  if (!evict_rng_.set_state(rng_state)) return false;
  table_ = std::move(loaded);
  stream_bytes_ = loaded_stream_bytes;
  overload_state_.restore(latched);
  audit_cursor_ = FlowKey{};
  return true;
}

ConnEntry* ConnTracker::track_udp(const FlowKey& key, bool from_local,
                                  util::Instant now, bool create) {
  ConnEntry* existing = find(key, now);
  if (existing != nullptr) {
    existing->last_update = now;
    return existing;
  }
  if (!create) return nullptr;
  if (!make_room(now)) return nullptr;
  ConnEntry fresh;
  fresh.initiator = from_local ? Initiator::kLocal : Initiator::kRemote;
  fresh.state = ConnState::kEstablished;  // UDP has no handshake states
  fresh.last_update = now;
  ConnEntry& created = table_[key] = fresh;
  TSPU_OBS_COUNT("tspu.conntrack.created");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kConntrack, "conn.create", now,
                     flow_str(key), conn_state_name(created.state));
  }
  note_occupancy(now);
  return &created;
}

}  // namespace tspu::core
