#include "tspu/frag_engine.h"

#include <algorithm>

#include "obs/obs.h"
#include "util/check.h"

namespace tspu::core {
namespace {

std::string frag_flow_str(const wire::FragmentKey& key) {
  return key.src.str() + ">" + key.dst.str() +
         " id=" + std::to_string(key.ip_id);
}

}  // namespace

void FragmentEngine::audit(util::Instant now) const {
  // Bounded rotating sweep, mirroring ConnTracker::audit: per-event cost
  // stays O(1) amortized even when a scan keeps many queues in flight.
  constexpr std::size_t kAuditSlice = 8;
  auto it = queues_.lower_bound(audit_cursor_);
  for (std::size_t n = 0; n < kAuditSlice && !queues_.empty(); ++n) {
    if (it == queues_.end()) it = queues_.begin();
    const auto& [key, q] = *it;
    ++it;
    // §5.3.1: the 46th fragment discards the queue, so a surviving queue can
    // never hold more than max_fragments (45) entries.
    TSPU_AUDIT(q.fragments.size() <= cfg_.max_fragments,
               "fragment queue exceeds the paper's 45-fragment limit");
    TSPU_AUDIT(q.ranges.size() == q.fragments.size(),
               "range bookkeeping out of sync with buffered fragments");
    TSPU_AUDIT(q.started <= now, "fragment queue started in the future");
    auto sorted = q.ranges;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      TSPU_AUDIT(sorted[i].second <= sorted[i + 1].first,
                 "overlapping fragments survived in a queue");
    }
    if (q.saw_last) {
      for (const auto& range : sorted) {
        TSPU_AUDIT(range.second <= q.total_len,
                   "fragment extends past the datagram's total length");
      }
    }
  }
  audit_cursor_ = it == queues_.end() ? wire::FragmentKey{} : it->first;
}

void FragmentEngine::expire(util::Instant now) {
  oldest_started_.reset();
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (now - it->second.started > cfg_.queue_timeout) {
      ++stats_.queues_discarded_timeout;
      TSPU_OBS_COUNT("tspu.frag.discard.timeout");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "frag.discard", now,
                         frag_flow_str(it->first), "timeout");
      }
      it = queues_.erase(it);
    } else {
      if (!oldest_started_ || it->second.started < *oldest_started_) {
        oldest_started_ = it->second.started;
      }
      ++it;
    }
  }
}

bool FragmentEngine::complete(const Queue& q) const {
  if (!q.saw_last) return false;
  auto ranges = q.ranges;
  std::sort(ranges.begin(), ranges.end());
  std::uint32_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    if (lo != cursor) return false;
    cursor = hi;
  }
  return cursor == q.total_len;
}

void FragmentEngine::discard(const wire::FragmentKey& key, util::Instant now,
                             const char* reason, std::uint64_t& stat) {
  queues_.erase(key);
  ++stat;
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kFrag, "frag.discard", now,
                     frag_flow_str(key), reason);
  }
}

std::vector<wire::Packet> FragmentEngine::push(wire::Packet frag,
                                               util::Instant now) {
  // Lazy expiry: sweep only when the oldest queue has actually timed out.
  // The oldest queue times out no later than any other, so the sweep runs
  // at exactly the first push at which the eager per-push sweep would have
  // discarded anything — discard counts and timing are identical, but a
  // burst of N fragments costs O(N) instead of O(N x queues).
  if (oldest_started_ && now - *oldest_started_ > cfg_.queue_timeout) {
    expire(now);
  }

  const wire::FragmentKey key = wire::fragment_key(frag.ip);
  Queue& q = queues_[key];
  if (q.fragments.empty()) {
    q.started = now;
    if (!oldest_started_ || now < *oldest_started_) oldest_started_ = now;
  }

  const std::uint32_t off = frag.ip.frag_offset;
  const std::uint32_t end =
      off + static_cast<std::uint32_t>(frag.payload.size());

  // Duplicate or overlapping fragment poisons the whole queue (§5.3.1) —
  // unlike RFC 5722's "ignore and keep" recommendation, which is one of the
  // fingerprints distinguishing the TSPU from other stacks (§7.2).
  if (wire::overlaps_any(q.ranges, off, end)) {
    discard(key, now, "overlap", stats_.queues_discarded_overlap);
    TSPU_OBS_COUNT("tspu.frag.discard.overlap");
    return {};
  }

  // 46th fragment discards everything, 45 is accepted (§5.3.1).
  if (q.fragments.size() + 1 > cfg_.max_fragments) {
    discard(key, now, "limit", stats_.queues_discarded_limit);
    TSPU_OBS_COUNT("tspu.frag.discard.limit");
    return {};
  }

  // A fragment extending past an already-announced total length — or a
  // "last" fragment whose end undercuts data already buffered — makes the
  // datagram geometry unsatisfiable. Poison-on-ambiguity, like overlaps:
  // previously this inconsistency only tripped a Debug TSPU_AUDIT while the
  // broken queue silently survived in Release.
  const bool overlong_tail = q.saw_last && end > q.total_len;
  const bool shrinking_last =
      !frag.ip.more_fragments &&
      std::any_of(q.ranges.begin(), q.ranges.end(),
                  [end](const auto& r) { return r.second > end; });
  if (overlong_tail || shrinking_last) {
    discard(key, now, "overlong", stats_.queues_discarded_overlong);
    TSPU_OBS_COUNT("tspu.frag.discard.overlong");
    return {};
  }

  if (frag.ip.is_first_fragment()) q.first_ttl = frag.ip.ttl;
  if (!frag.ip.more_fragments) {
    q.saw_last = true;
    q.total_len = end;
  }
  q.ranges.emplace_back(off, end);
  q.fragments.push_back(std::move(frag));
  ++stats_.fragments_buffered;
  TSPU_OBS_COUNT("tspu.frag.buffered");

  if (!complete(q)) {
    if constexpr (util::kAuditEnabled) audit(now);
    return {};
  }

  // Release: forward every buffered fragment individually, all carrying the
  // first fragment's arrival TTL (Figure 3).
  std::vector<wire::Packet> out = std::move(q.fragments);
  const std::uint8_t ttl = q.first_ttl.value_or(out.front().ip.ttl);
  for (wire::Packet& p : out) p.ip.ttl = ttl;
  queues_.erase(key);
  ++stats_.queues_released;
  TSPU_OBS_COUNT("tspu.frag.released");
  if (obs::Recorder* rec = obs::recorder()) {
    rec->metrics.histogram("tspu.frag.release_size").observe(out.size());
  }
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kFrag, "frag.release", now,
                     frag_flow_str(key),
                     std::to_string(out.size()) + " fragments");
  }
  if constexpr (util::kAuditEnabled) audit(now);
  return out;
}

}  // namespace tspu::core
