#include "tspu/frag_engine.h"

#include <algorithm>

#include "util/check.h"

namespace tspu::core {

void FragmentEngine::audit(util::Instant now) const {
  // Bounded rotating sweep, mirroring ConnTracker::audit: per-event cost
  // stays O(1) amortized even when a scan keeps many queues in flight.
  constexpr std::size_t kAuditSlice = 8;
  auto it = queues_.lower_bound(audit_cursor_);
  for (std::size_t n = 0; n < kAuditSlice && !queues_.empty(); ++n) {
    if (it == queues_.end()) it = queues_.begin();
    const auto& [key, q] = *it;
    ++it;
    // §5.3.1: the 46th fragment discards the queue, so a surviving queue can
    // never hold more than max_fragments (45) entries.
    TSPU_AUDIT(q.fragments.size() <= cfg_.max_fragments,
               "fragment queue exceeds the paper's 45-fragment limit");
    TSPU_AUDIT(q.ranges.size() == q.fragments.size(),
               "range bookkeeping out of sync with buffered fragments");
    TSPU_AUDIT(q.started <= now, "fragment queue started in the future");
    auto sorted = q.ranges;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      TSPU_AUDIT(sorted[i].second <= sorted[i + 1].first,
                 "overlapping fragments survived in a queue");
    }
    if (q.saw_last) {
      for (const auto& range : sorted) {
        TSPU_AUDIT(range.second <= q.total_len,
                   "fragment extends past the datagram's total length");
      }
    }
  }
  audit_cursor_ = it == queues_.end() ? wire::FragmentKey{} : it->first;
}

void FragmentEngine::expire(util::Instant now) {
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (now - it->second.started > cfg_.queue_timeout) {
      ++stats_.queues_discarded_timeout;
      it = queues_.erase(it);
    } else {
      ++it;
    }
  }
}

bool FragmentEngine::complete(const Queue& q) const {
  if (!q.saw_last) return false;
  auto ranges = q.ranges;
  std::sort(ranges.begin(), ranges.end());
  std::uint32_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    if (lo != cursor) return false;
    cursor = hi;
  }
  return cursor == q.total_len;
}

std::vector<wire::Packet> FragmentEngine::push(wire::Packet frag,
                                               util::Instant now) {
  expire(now);

  const wire::FragmentKey key = wire::fragment_key(frag.ip);
  Queue& q = queues_[key];
  if (q.fragments.empty()) q.started = now;

  const std::uint32_t off = frag.ip.frag_offset;
  const std::uint32_t end =
      off + static_cast<std::uint32_t>(frag.payload.size());

  // Duplicate or overlapping fragment poisons the whole queue (§5.3.1) —
  // unlike RFC 5722's "ignore and keep" recommendation, which is one of the
  // fingerprints distinguishing the TSPU from other stacks (§7.2).
  if (wire::overlaps_any(q.ranges, off, end)) {
    queues_.erase(key);
    ++stats_.queues_discarded_overlap;
    return {};
  }

  // 46th fragment discards everything, 45 is accepted (§5.3.1).
  if (q.fragments.size() + 1 > cfg_.max_fragments) {
    queues_.erase(key);
    ++stats_.queues_discarded_limit;
    return {};
  }

  if (frag.ip.is_first_fragment()) q.first_ttl = frag.ip.ttl;
  if (!frag.ip.more_fragments) {
    q.saw_last = true;
    q.total_len = end;
  }
  q.ranges.emplace_back(off, end);
  q.fragments.push_back(std::move(frag));
  ++stats_.fragments_buffered;

  if (!complete(q)) {
    if constexpr (util::kAuditEnabled) audit(now);
    return {};
  }

  // Release: forward every buffered fragment individually, all carrying the
  // first fragment's arrival TTL (Figure 3).
  std::vector<wire::Packet> out = std::move(q.fragments);
  const std::uint8_t ttl = q.first_ttl.value_or(out.front().ip.ttl);
  for (wire::Packet& p : out) p.ip.ttl = ttl;
  queues_.erase(key);
  ++stats_.queues_released;
  if constexpr (util::kAuditEnabled) audit(now);
  return out;
}

}  // namespace tspu::core
