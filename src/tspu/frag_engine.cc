#include "tspu/frag_engine.h"

#include <algorithm>
#include <array>
#include <iterator>
#include <utility>

#include "obs/obs.h"
#include "util/check.h"
#include "util/statecodec.h"

namespace tspu::core {
namespace {

std::string frag_flow_str(const wire::FragmentKey& key) {
  return key.src.str() + ">" + key.dst.str() +
         " id=" + std::to_string(key.ip_id);
}

}  // namespace

void FragmentEngine::set_budget(TableBudget budget, OverloadPolicy overload) {
  budget_ = budget;
  overload_ = overload;
  overload_state_.reset();
}

void FragmentEngine::note_occupancy(util::Instant now) {
  // Gated on bounded(): an unbounded engine keeps its obs output
  // byte-identical to the pre-budget device.
  if (!budget_.bounded()) return;
  // Reconcile lazy expiry before reading occupancy: queues past the timeout
  // but not yet swept must not inflate the gauge or latch overload.enter on
  // dead state. Recursion bottoms out — expire() recomputes oldest_started_
  // over survivors, so its own note_occupancy call sees no expired queue.
  if (oldest_started_ && now - *oldest_started_ > cfg_.queue_timeout) {
    expire(now);
  }
  if (obs::Recorder* rec = obs::recorder()) {
    rec->metrics.gauge("tspu.frag.occupancy")
        .set_max(static_cast<std::int64_t>(queues_.size()));
    rec->metrics.gauge("tspu.frag.buffered_bytes")
        .set_max(static_cast<std::int64_t>(buffered_bytes_));
  }
  if (overload_state_.update(queues_.size(), budget_.max_entries, overload_)) {
    const std::string detail = std::to_string(queues_.size()) + "/" +
                               std::to_string(budget_.max_entries);
    if (overload_state_.overloaded()) {
      TSPU_OBS_COUNT("tspu.frag.overload.enter");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "overload.enter", now, {}, detail);
      }
    } else {
      TSPU_OBS_COUNT("tspu.frag.overload.exit");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "overload.exit", now, {}, detail);
      }
    }
  }
}

void FragmentEngine::evict_one(util::Instant now, const char* reason) {
  auto victim = queues_.begin();
  if (budget_.policy == EvictionPolicy::kEvictRandom) {
    std::advance(victim, static_cast<std::ptrdiff_t>(evict_rng_.next() %
                                                     queues_.size()));
  } else {
    for (auto it = std::next(queues_.begin()); it != queues_.end(); ++it) {
      if (it->second.started < victim->second.started) victim = it;
    }
  }
  buffered_bytes_ -= victim->second.bytes;
  ++stats_.queues_evicted;
  TSPU_OBS_COUNT("tspu.frag.evicted");
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kFrag, "frag.evict", now,
                     frag_flow_str(victim->first), reason);
  }
  queues_.erase(victim);
  // Shrink re-checks the hysteresis band: an eviction can carry occupancy
  // through exit_fraction, and without this the latch only ever re-evaluated
  // on admission — a shrink-only workload stayed "overloaded" forever.
  note_occupancy(now);
}

bool FragmentEngine::make_room(util::Instant now, bool new_queue,
                               std::size_t add_bytes) {
  const bool over_entries = new_queue && budget_.max_entries != 0 &&
                            queues_.size() >= budget_.max_entries;
  const bool over_bytes = budget_.max_bytes != 0 &&
                          buffered_bytes_ + add_bytes > budget_.max_bytes;
  if (!over_entries && !over_bytes &&
      !(budget_.policy == EvictionPolicy::kRejectNew && new_queue &&
        overload_state_.overloaded())) {
    return true;
  }
  // Reclaim timed-out queues before sacrificing live ones.
  expire(now);
  if (budget_.policy == EvictionPolicy::kRejectNew) {
    const bool still_over_entries =
        new_queue && budget_.max_entries != 0 &&
        (overload_state_.overloaded() ||
         queues_.size() >= budget_.max_entries);
    const bool still_over_bytes =
        budget_.max_bytes != 0 &&
        buffered_bytes_ + add_bytes > budget_.max_bytes;
    if (still_over_entries || still_over_bytes) {
      ++stats_.fragments_rejected;
      TSPU_OBS_COUNT("tspu.frag.rejected");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "frag.reject", now, {},
                         still_over_bytes ? "byte-budget" : "entry-budget");
      }
      return false;
    }
    return true;
  }
  if (new_queue && budget_.max_entries != 0) {
    while (queues_.size() >= budget_.max_entries) {
      evict_one(now, "entry-budget");
    }
  }
  if (budget_.max_bytes != 0) {
    while (buffered_bytes_ + add_bytes > budget_.max_bytes &&
           !queues_.empty()) {
      evict_one(now, "byte-budget");
    }
    if (buffered_bytes_ + add_bytes > budget_.max_bytes) {
      // A single fragment larger than the whole byte budget: reject it —
      // occupancy may never exceed the budget, whatever the policy.
      ++stats_.fragments_rejected;
      TSPU_OBS_COUNT("tspu.frag.rejected");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "frag.reject", now, {},
                         "byte-budget");
      }
      return false;
    }
  }
  note_occupancy(now);
  return true;
}

void FragmentEngine::audit(util::Instant now) const {
  // Bounded rotating sweep, mirroring ConnTracker::audit: per-event cost
  // stays O(1) amortized even when a scan keeps many queues in flight.
  constexpr std::size_t kAuditSlice = 8;
  // Budget invariants: admission control precedes every buffer, and every
  // erase path returns its bytes, so occupancy never exceeds the budget
  // after any sim event.
  if (budget_.max_entries != 0) {
    TSPU_AUDIT(queues_.size() <= budget_.max_entries,
               "fragment queue count exceeds the entry budget");
  }
  if (budget_.max_bytes != 0) {
    TSPU_AUDIT(buffered_bytes_ <= budget_.max_bytes,
               "buffered fragment bytes exceed the byte budget");
  }
  auto it = queues_.lower_bound(audit_cursor_);
  for (std::size_t n = 0; n < kAuditSlice && !queues_.empty(); ++n) {
    if (it == queues_.end()) it = queues_.begin();
    const auto& [key, q] = *it;
    ++it;
    // §5.3.1: the 46th fragment discards the queue, so a surviving queue can
    // never hold more than max_fragments (45) entries.
    TSPU_AUDIT(q.fragments.size() <= cfg_.max_fragments,
               "fragment queue exceeds the paper's 45-fragment limit");
    TSPU_AUDIT(q.ranges.size() == q.fragments.size(),
               "range bookkeeping out of sync with buffered fragments");
    TSPU_AUDIT(q.started <= now, "fragment queue started in the future");
    std::size_t queue_bytes = 0;
    for (const wire::Packet& p : q.fragments) queue_bytes += p.payload.size();
    TSPU_AUDIT(queue_bytes == q.bytes,
               "per-queue byte accounting out of sync with fragments");
    auto sorted = q.ranges;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      TSPU_AUDIT(sorted[i].second <= sorted[i + 1].first,
                 "overlapping fragments survived in a queue");
    }
    if (q.saw_last) {
      for (const auto& range : sorted) {
        TSPU_AUDIT(range.second <= q.total_len,
                   "fragment extends past the datagram's total length");
      }
    }
  }
  audit_cursor_ = it == queues_.end() ? wire::FragmentKey{} : it->first;
}

void FragmentEngine::expire(util::Instant now) {
  oldest_started_.reset();
  bool erased = false;
  for (auto it = queues_.begin(); it != queues_.end();) {
    if (now - it->second.started > cfg_.queue_timeout) {
      ++stats_.queues_discarded_timeout;
      TSPU_OBS_COUNT("tspu.frag.discard.timeout");
      if (obs::tracing()) {
        obs::trace_event(obs::Layer::kFrag, "frag.discard", now,
                         frag_flow_str(it->first), "age");
      }
      buffered_bytes_ -= it->second.bytes;
      it = queues_.erase(it);
      erased = true;
    } else {
      if (!oldest_started_ || it->second.started < *oldest_started_) {
        oldest_started_ = it->second.started;
      }
      ++it;
    }
  }
  if (erased) note_occupancy(now);
}

bool FragmentEngine::complete(const Queue& q) const {
  if (!q.saw_last) return false;
  auto ranges = q.ranges;
  std::sort(ranges.begin(), ranges.end());
  std::uint32_t cursor = 0;
  for (const auto& [lo, hi] : ranges) {
    if (lo != cursor) return false;
    cursor = hi;
  }
  return cursor == q.total_len;
}

void FragmentEngine::discard(const wire::FragmentKey& key, util::Instant now,
                             const char* reason, std::uint64_t& stat) {
  if (auto it = queues_.find(key); it != queues_.end()) {
    buffered_bytes_ -= it->second.bytes;
    queues_.erase(it);
  }
  ++stat;
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kFrag, "frag.discard", now,
                     frag_flow_str(key), reason);
  }
  note_occupancy(now);
}

std::vector<wire::Packet> FragmentEngine::push(wire::Packet frag,
                                               util::Instant now,
                                               bool* rejected) {
  // Lazy expiry: sweep only when the oldest queue has actually timed out.
  // The oldest queue times out no later than any other, so the sweep runs
  // at exactly the first push at which the eager per-push sweep would have
  // discarded anything — discard counts and timing are identical, but a
  // burst of N fragments costs O(N) instead of O(N x queues).
  if (oldest_started_ && now - *oldest_started_ > cfg_.queue_timeout) {
    expire(now);
  }

  const wire::FragmentKey key = wire::fragment_key(frag.ip);
  if (budget_.bounded() &&
      !make_room(now, queues_.find(key) == queues_.end(),
                 frag.payload.size())) {
    // Admission refused: hand the fragment back to the device so the
    // overload policy (fail-open forward / fail-closed drop) decides.
    if (rejected != nullptr) *rejected = true;
    std::vector<wire::Packet> back;
    back.push_back(std::move(frag));
    return back;
  }
  Queue& q = queues_[key];
  if (q.fragments.empty()) {
    q.started = now;
    if (!oldest_started_ || now < *oldest_started_) oldest_started_ = now;
  }

  const std::uint32_t off = frag.ip.frag_offset;
  const std::uint32_t end =
      off + static_cast<std::uint32_t>(frag.payload.size());

  // Duplicate or overlapping fragment poisons the whole queue (§5.3.1) —
  // unlike RFC 5722's "ignore and keep" recommendation, which is one of the
  // fingerprints distinguishing the TSPU from other stacks (§7.2).
  if (wire::overlaps_any(q.ranges, off, end)) {
    discard(key, now, "overlap", stats_.queues_discarded_overlap);
    TSPU_OBS_COUNT("tspu.frag.discard.overlap");
    return {};
  }

  // 46th fragment discards everything, 45 is accepted (§5.3.1). This is the
  // per-queue count limit of the budget accounting; the trace reason
  // distinguishes it from age and byte-budget discards.
  if (q.fragments.size() + 1 > cfg_.max_fragments) {
    discard(key, now, "count-limit", stats_.queues_discarded_limit);
    TSPU_OBS_COUNT("tspu.frag.discard.limit");
    return {};
  }

  // A fragment extending past an already-announced total length — or a
  // "last" fragment whose end undercuts data already buffered — makes the
  // datagram geometry unsatisfiable. Poison-on-ambiguity, like overlaps:
  // previously this inconsistency only tripped a Debug TSPU_AUDIT while the
  // broken queue silently survived in Release.
  const bool overlong_tail = q.saw_last && end > q.total_len;
  const bool shrinking_last =
      !frag.ip.more_fragments &&
      std::any_of(q.ranges.begin(), q.ranges.end(),
                  [end](const auto& r) { return r.second > end; });
  if (overlong_tail || shrinking_last) {
    discard(key, now, "overlong", stats_.queues_discarded_overlong);
    TSPU_OBS_COUNT("tspu.frag.discard.overlong");
    return {};
  }

  if (frag.ip.is_first_fragment()) q.first_ttl = frag.ip.ttl;
  if (!frag.ip.more_fragments) {
    q.saw_last = true;
    q.total_len = end;
  }
  q.ranges.emplace_back(off, end);
  q.bytes += frag.payload.size();
  buffered_bytes_ += frag.payload.size();
  q.fragments.push_back(std::move(frag));
  ++stats_.fragments_buffered;
  TSPU_OBS_COUNT("tspu.frag.buffered");
  // Publish on EVERY byte-accounted mutation, not just the push that creates
  // a fresh queue: fragments appended to an existing queue grow
  // buffered_bytes_ too, and gating on size()==1 under-reported byte-budget
  // growth (and starved the latch of byte-driven occupancy changes).
  note_occupancy(now);

  if (!complete(q)) {
    if constexpr (util::kAuditEnabled) audit(now);
    return {};
  }

  // Release: forward every buffered fragment individually, all carrying the
  // first fragment's arrival TTL (Figure 3).
  std::vector<wire::Packet> out = std::move(q.fragments);
  const std::uint8_t ttl = q.first_ttl.value_or(out.front().ip.ttl);
  for (wire::Packet& p : out) p.ip.ttl = ttl;
  buffered_bytes_ -= q.bytes;
  queues_.erase(key);
  note_occupancy(now);
  ++stats_.queues_released;
  TSPU_OBS_COUNT("tspu.frag.released");
  if (obs::Recorder* rec = obs::recorder()) {
    rec->metrics.histogram("tspu.frag.release_size").observe(out.size());
  }
  if (obs::tracing()) {
    obs::trace_event(obs::Layer::kFrag, "frag.release", now,
                     frag_flow_str(key),
                     std::to_string(out.size()) + " fragments");
  }
  if constexpr (util::kAuditEnabled) audit(now);
  return out;
}

void FragmentEngine::save_state(util::StateWriter& w) const {
  w.u64(stats_.fragments_buffered);
  w.u64(stats_.queues_released);
  w.u64(stats_.queues_discarded_overlap);
  w.u64(stats_.queues_discarded_limit);
  w.u64(stats_.queues_discarded_timeout);
  w.u64(stats_.queues_discarded_overlong);
  w.u64(stats_.queues_evicted);
  w.u64(stats_.fragments_rejected);
  w.u32(static_cast<std::uint32_t>(queues_.size()));
  for (const auto& [key, q] : queues_) {
    w.u32(key.src.value());
    w.u32(key.dst.value());
    w.u16(key.ip_id);
    w.i64(q.started.as_micros());
    w.boolean(q.first_ttl.has_value());
    if (q.first_ttl) w.u8(*q.first_ttl);
    w.boolean(q.saw_last);
    w.u32(q.total_len);
    w.u32(static_cast<std::uint32_t>(q.fragments.size()));
    // Member scope hides the namespace-level packet codec; qualify.
    for (const wire::Packet& p : q.fragments) ::tspu::wire::save_state(p, w);
  }
  w.boolean(oldest_started_.has_value());
  if (oldest_started_) w.i64(oldest_started_->as_micros());
  w.boolean(overload_state_.overloaded());
  for (std::uint64_t lane : evict_rng_.state()) w.u64(lane);
}

bool FragmentEngine::load_state(util::StateReader& r) {
  FragEngineStats stats;
  if (!r.u64(stats.fragments_buffered) || !r.u64(stats.queues_released) ||
      !r.u64(stats.queues_discarded_overlap) ||
      !r.u64(stats.queues_discarded_limit) ||
      !r.u64(stats.queues_discarded_timeout) ||
      !r.u64(stats.queues_discarded_overlong) ||
      !r.u64(stats.queues_evicted) || !r.u64(stats.fragments_rejected)) {
    return false;
  }
  std::uint32_t count = 0;
  if (!r.u32(count)) return false;
  std::map<wire::FragmentKey, Queue> loaded;
  std::size_t total_bytes = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t ip_id = 0;
    if (!r.u32(src) || !r.u32(dst) || !r.u16(ip_id)) return false;
    Queue q;
    std::int64_t started_us = 0;
    bool has_ttl = false;
    if (!r.i64(started_us) || !r.boolean(has_ttl)) return false;
    q.started = util::Instant::from_micros(started_us);
    if (has_ttl) {
      std::uint8_t ttl = 0;
      if (!r.u8(ttl)) return false;
      q.first_ttl = ttl;
    }
    std::uint32_t frags = 0;
    if (!r.boolean(q.saw_last) || !r.u32(q.total_len) || !r.u32(frags)) {
      return false;
    }
    if (frags > cfg_.max_fragments) return false;
    q.fragments.reserve(frags);
    q.ranges.reserve(frags);
    for (std::uint32_t f = 0; f < frags; ++f) {
      wire::Packet pkt;
      if (!::tspu::wire::load_state(pkt, r)) return false;
      // Ranges and byte accounting derive from the fragments; rebuilding
      // them here keeps the snapshot minimal and untrusted input honest.
      const std::uint32_t off = pkt.ip.frag_offset;
      const std::uint32_t end =
          off + static_cast<std::uint32_t>(pkt.payload.size());
      q.ranges.emplace_back(off, end);
      q.bytes += pkt.payload.size();
      q.fragments.push_back(std::move(pkt));
    }
    total_bytes += q.bytes;
    const wire::FragmentKey key{util::Ipv4Addr(src), util::Ipv4Addr(dst),
                                ip_id};
    if (!loaded.emplace(key, std::move(q)).second) return false;
  }
  bool has_oldest = false;
  if (!r.boolean(has_oldest)) return false;
  std::optional<util::Instant> oldest;
  if (has_oldest) {
    std::int64_t oldest_us = 0;
    if (!r.i64(oldest_us)) return false;
    oldest = util::Instant::from_micros(oldest_us);
  }
  bool latched = false;
  if (!r.boolean(latched)) return false;
  std::array<std::uint64_t, 4> lanes{};
  for (std::uint64_t& lane : lanes) {
    if (!r.u64(lane)) return false;
  }
  if (!evict_rng_.set_state(lanes)) return false;
  stats_ = stats;
  queues_ = std::move(loaded);
  buffered_bytes_ = total_bytes;
  oldest_started_ = oldest;
  overload_state_.restore(latched);
  audit_cursor_ = wire::FragmentKey{};
  return true;
}

}  // namespace tspu::core
