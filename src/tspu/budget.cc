#include "tspu/budget.h"

namespace tspu::core {

const char* eviction_policy_name(EvictionPolicy p) {
  switch (p) {
    case EvictionPolicy::kEvictOldest: return "evict-oldest";
    case EvictionPolicy::kEvictRandom: return "evict-random";
    case EvictionPolicy::kRejectNew: return "reject-new";
  }
  return "?";
}

}  // namespace tspu::core
