// The TSPU's connection-tracking and blocking-state timeouts, as measured by
// the paper (Table 2, Table 8). These constants are the canonical values the
// Device enforces; measure::TimeoutEstimator re-derives them black-box.
#pragma once

#include "util/time.h"

namespace tspu::core {

using util::Duration;

/// Conntrack states the device distinguishes (§5.3.2/§5.3.3). The paper
/// found four unique prefix-state timeouts plus the Table-2 TCP states; this
/// model unifies them as follows (documented in EXPERIMENTS.md):
struct ConntrackTimeouts {
  /// Local host sent the first packet and it was a SYN (Table 2 SYN-SENT).
  Duration local_syn_sent = Duration::seconds(60);
  /// Local-initiated flow that saw SYNs from both sides but no SYN/ACK yet
  /// (Table 2 SYN-RECEIVED, from Local.SYN; Remote.SYN; Local.ACK).
  Duration syn_received = Duration::seconds(105);
  /// Handshake completed (Table 2 ESTABLISHED).
  Duration established = Duration::seconds(480);
  /// Local-initiated flow whose first packet was NOT a bare SYN (e.g. a bare
  /// SYN/ACK — a valid blocking prefix per §7.1.1 / Table 8 "Lsa" = 420).
  Duration local_other = Duration::seconds(420);
  /// Remote-initiated flow opened by a remote SYN (Table 8 "Rs" rows = 30).
  Duration remote_syn_sent = Duration::seconds(30);
  /// Remote-initiated flow opened by any other remote packet (Table 8
  /// "Ra"/"Rsa" rows = 480).
  Duration remote_other = Duration::seconds(480);
  /// Roles reversed by a local SYN/ACK answering a remote SYN (split
  /// handshake, §8; Table 8 rows with "...;Lsa" after a SYN = 180).
  Duration role_reversed = Duration::seconds(180);
};

/// Residual-censorship durations once a blocking state is entered (Table 2).
struct BlockingTimeouts {
  Duration sni_i = Duration::seconds(75);
  Duration sni_ii = Duration::seconds(420);
  Duration sni_iv = Duration::seconds(40);
  Duration quic = Duration::seconds(420);
};

/// §5.3.1: fragment-queue behavior constants.
struct FragmentTimeouts {
  Duration queue_timeout = Duration::seconds(5);
  std::size_t max_fragments = 45;
};

}  // namespace tspu::core
