#include "circumvent/strategies.h"

#include "measure/common.h"
#include "quic/quic.h"
#include "tls/clienthello.h"

namespace tspu::circumvent {
namespace {

/// Builds a ClientHello with a benign TLS record prepended — a single-record
/// DPI parser stops at the first record and never finds the SNI (§8).
util::Bytes prepended_record_ch(const std::string& sni) {
  util::ByteWriter w;
  w.u8(tls::kContentTypeHandshake);
  w.u16(tls::kVersionTls10);
  w.u16(4);
  w.u8(0x04);  // new_session_ticket: harmless to the real server's parser
  w.u24(0);
  tls::ClientHelloSpec spec;
  spec.sni = sni;
  w.raw(tls::build_client_hello(spec));
  return std::move(w).take();
}

}  // namespace

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kBaseline: return "baseline (none)";
    case Strategy::kSmallWindow: return "server: small window";
    case Strategy::kMssClamp: return "server: MSS clamp (ext)";
    case Strategy::kSplitHandshake: return "server: split handshake";
    case Strategy::kCombined: return "server: split + small window";
    case Strategy::kServerWaitTimeout: return "server: wait out SYN-SENT";
    case Strategy::kIpFragmentCh: return "client: IP-fragment CH";
    case Strategy::kTcpSegmentCh: return "client: TCP-segment CH";
    case Strategy::kPaddedCh: return "client: padded CH";
    case Strategy::kPrependedRecord: return "client: prepend TLS record";
    case Strategy::kTtlDecoy: return "client: TTL-limited decoy";
    case Strategy::kQuicDraft29: return "client: QUIC draft-29";
    case Strategy::kQuicPing: return "client: quicping version";
  }
  return "?";
}

bool is_server_side(Strategy s) {
  switch (s) {
    case Strategy::kSmallWindow:
    case Strategy::kMssClamp:
    case Strategy::kSplitHandshake:
    case Strategy::kCombined:
    case Strategy::kServerWaitTimeout:
      return true;
    default:
      return false;
  }
}

bool tls_exchange_succeeds(topo::Scenario& scenario, topo::VantagePoint& vp,
                           Strategy strategy, const std::string& sni) {
  auto& net = scenario.net();
  netsim::Host& server = scenario.us_raw_machine();
  netsim::Host& client = *vp.host;

  // Install the strategy server on the quiet machine's :443.
  netsim::TcpServerOptions server_opts = netsim::tls_server_options();
  switch (strategy) {
    case Strategy::kSmallWindow:
      server_opts.window = 64;  // forces the client to split the CH
      break;
    case Strategy::kMssClamp:
      server_opts.mss = 48;  // same splitting effect via the MSS option
      break;
    case Strategy::kSplitHandshake:
      server_opts.split_handshake = true;
      break;
    case Strategy::kCombined:
      server_opts.split_handshake = true;
      server_opts.window = 64;
      break;
    case Strategy::kServerWaitTimeout:
      // Handled below: the *handshake reply* must be late, which this mini
      // stack models by delaying the whole service registration.
      break;
    default:
      break;
  }
  server.listen(443, server_opts);

  netsim::TcpClientOptions client_opts;
  client_opts.src_port = measure::fresh_port();
  switch (strategy) {
    case Strategy::kIpFragmentCh:
      client_opts.ip_fragment_payload = 64;
      break;
    case Strategy::kTcpSegmentCh:
      client_opts.max_segment = 64;
      break;
    default:
      break;
  }

  // Success = the ServerHello arrives AND a sustained exchange survives;
  // the latter is what separates real evasion from SNI-II's grace window.
  auto sustained_ok = [&](netsim::TcpClient& conn) {
    if (conn.received().empty() || conn.got_rst()) return false;
    const int before = conn.data_segments_received();
    for (int i = 0; i < 8; ++i) {
      conn.send(util::to_bytes("probe-" + std::to_string(i)));
      net.sim().run_until_idle();
    }
    return !conn.got_rst() && conn.data_segments_received() - before >= 7;
  };

  bool ok = false;
  if (strategy == Strategy::kServerWaitTimeout) {
    // Client SYNs while the server is silent; the TSPU's SYN-SENT entry
    // (60 s) expires; the server then completes the handshake, making the
    // flow look server-initiated from the device's perspective.
    server.close_port(443);
    netsim::TcpClient& conn = client.connect(server.addr(), 443, client_opts);
    net.sim().run_until_idle();
    net.sim().run_for(util::Duration::seconds(70));
    // Late SYN/ACK, crafted from the server side against the client's ISN.
    wire::TcpHeader synack;
    synack.src_port = 443;
    synack.dst_port = client_opts.src_port;
    synack.seq = 0x9e000000;
    synack.ack = conn.snd_nxt();
    synack.flags = wire::kSynAck;
    server.send_tcp(client.addr(), synack);
    net.sim().run_until_idle();
    if (conn.established_once()) {
      tls::ClientHelloSpec spec;
      spec.sni = sni;
      conn.send(tls::build_client_hello(spec));
      net.sim().run_until_idle();
      // Crafted late "ServerHello" responses judge whether the downstream
      // direction survived the trigger.
      std::uint32_t seq = 0x9e000000 + 1;
      for (int i = 0; i < 3; ++i) {
        wire::TcpHeader data;
        data.src_port = 443;
        data.dst_port = client_opts.src_port;
        data.seq = seq;
        data.ack = conn.snd_nxt();
        data.flags = wire::kPshAck;
        const util::Bytes payload = util::to_bytes("late-response-" +
                                                   std::to_string(i));
        server.send_tcp(client.addr(), data, payload);
        seq += static_cast<std::uint32_t>(payload.size());
        net.sim().run_until_idle();
      }
      ok = !conn.got_rst() && conn.data_segments_received() >= 3;
    }
  } else {
    netsim::TcpClient& conn = client.connect(server.addr(), 443, client_opts);
    net.sim().run_until_idle();
    if (conn.established_once()) {
      tls::ClientHelloSpec spec;
      spec.sni = sni;
      util::Bytes ch;
      switch (strategy) {
        case Strategy::kPaddedCh:
          spec.pad_to = 2600;  // > one MSS: the stack sends two segments
          ch = tls::build_client_hello(spec);
          break;
        case Strategy::kPrependedRecord:
          ch = prepended_record_ch(sni);
          break;
        case Strategy::kTtlDecoy: {
          // Garbage that dies mid-path, then the real CH. The TSPU's
          // inspection window covers later packets, so this is mitigated.
          util::Bytes decoy = util::to_bytes("decoy-garbage-payload");
          conn.send_segment(wire::kPshAck, decoy, /*ttl=*/3,
                            /*advance_seq=*/false);
          net.sim().run_until_idle();
          ch = tls::build_client_hello(spec);
          break;
        }
        default:
          ch = tls::build_client_hello(spec);
          break;
      }
      conn.send(std::move(ch));
      net.sim().run_until_idle();
      ok = sustained_ok(conn);
    }
  }

  server.close_port(443);
  client.reset_traffic_state();
  server.reset_traffic_state();
  net.sim().run_for(util::Duration::seconds(1));
  return ok;
}

bool quic_exchange_succeeds(topo::Scenario& scenario, topo::VantagePoint& vp,
                            Strategy strategy) {
  std::uint32_t version = quic::kVersion1;
  if (strategy == Strategy::kQuicDraft29) version = quic::kVersionDraft29;
  if (strategy == Strategy::kQuicPing) version = quic::kVersionQuicPing;
  auto result = measure::test_quic(scenario.net(), *vp.host,
                                   scenario.us_machine(0).addr(), version);
  vp.host->reset_traffic_state();
  return !result.blocked;
}

std::vector<StrategyOutcome> evaluate_strategies(topo::Scenario& scenario,
                                                 topo::VantagePoint& vp) {
  const std::string sni_i_domain = "facebook.com";
  const std::string sni_ii_domain = "nordvpn.com";

  std::vector<StrategyOutcome> out;
  for (Strategy s :
       {Strategy::kBaseline, Strategy::kSmallWindow, Strategy::kMssClamp,
        Strategy::kSplitHandshake,
        Strategy::kCombined, Strategy::kServerWaitTimeout,
        Strategy::kIpFragmentCh, Strategy::kTcpSegmentCh, Strategy::kPaddedCh,
        Strategy::kPrependedRecord, Strategy::kTtlDecoy,
        Strategy::kQuicDraft29, Strategy::kQuicPing}) {
    StrategyOutcome o;
    o.strategy = s;
    if (s == Strategy::kQuicDraft29 || s == Strategy::kQuicPing) {
      o.applicable_to_tls = false;
      o.applicable_to_quic = true;
      o.evades_quic = quic_exchange_succeeds(scenario, vp, s);
    } else {
      o.evades_sni_i = tls_exchange_succeeds(scenario, vp, s, sni_i_domain);
      o.evades_sni_ii = tls_exchange_succeeds(scenario, vp, s, sni_ii_domain);
      if (s == Strategy::kBaseline) {
        o.applicable_to_quic = true;
        o.evades_quic = quic_exchange_succeeds(scenario, vp, s);
      }
    }
    out.push_back(o);
  }
  return out;
}

}  // namespace tspu::circumvent
