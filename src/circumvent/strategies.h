// Censorship-circumvention strategies (§8) and an evaluation harness that
// runs each against a TSPU-censored path and reports what it evades.
//
// Server-side strategies need no client modification:
//   kSmallWindow       SYN/ACK advertises a tiny window; the unmodified
//                      client stack splits the ClientHello (brdgrd-style)
//   kMssClamp          SYN/ACK announces a tiny MSS option — the same
//                      splitting effect via a different TCP knob
//                      (extension beyond the paper's §8 list)
//   kSplitHandshake    server answers SYN with SYN; roles reverse
//   kCombined          split handshake + small window
//   kServerWaitTimeout server idles past the TSPU SYN-SENT timeout before
//                      answering, so the flow looks server-initiated
// Client-side strategies modify the client stack or TLS layer:
//   kIpFragmentCh      ClientHello split across IP fragments
//   kTcpSegmentCh      ClientHello split across small TCP segments
//   kPaddedCh          padding extension grows the CH past one MSS
//   kPrependedRecord   benign TLS record prepended before the CH record
//   kTtlDecoy          TTL-limited garbage before the CH — MITIGATED (§8)
//   kQuicDraft29       QUIC version draft-29 instead of v1
//   kQuicPing          quicping version field
#pragma once

#include <string>
#include <vector>

#include "measure/behavior.h"
#include "topo/scenario.h"

namespace tspu::circumvent {

enum class Strategy {
  kBaseline,  ///< no strategy: the control row
  kSmallWindow,
  kMssClamp,
  kSplitHandshake,
  kCombined,
  kServerWaitTimeout,
  kIpFragmentCh,
  kTcpSegmentCh,
  kPaddedCh,
  kPrependedRecord,
  kTtlDecoy,
  kQuicDraft29,
  kQuicPing,
};

std::string strategy_name(Strategy s);
bool is_server_side(Strategy s);

struct StrategyOutcome {
  Strategy strategy;
  /// One entry per SNI behavior tried: true = ServerHello delivered.
  bool evades_sni_i = false;
  bool evades_sni_ii = false;
  /// QUIC strategies only: did the QUIC exchange survive?
  bool evades_quic = false;
  bool applicable_to_tls = true;
  bool applicable_to_quic = false;
};

/// Runs a TLS exchange from `vp` using `strategy` against a dedicated
/// strategy server (installed on the scenario's quiet us-raw machine) with
/// the given SNI; true when the ServerHello arrived intact.
bool tls_exchange_succeeds(topo::Scenario& scenario, topo::VantagePoint& vp,
                           Strategy strategy, const std::string& sni);

/// Runs a QUIC exchange (version picked by the strategy); true = answered.
bool quic_exchange_succeeds(topo::Scenario& scenario, topo::VantagePoint& vp,
                            Strategy strategy);

/// Full §8 evaluation matrix from one vantage point: every strategy against
/// an SNI-I domain, an SNI-II domain, and the QUIC filter.
std::vector<StrategyOutcome> evaluate_strategies(topo::Scenario& scenario,
                                                 topo::VantagePoint& vp);

}  // namespace tspu::circumvent
