#include "fuzz/harness.h"

#include <algorithm>
#include <array>

#include "dns/dns.h"
#include "quic/quic.h"
#include "tls/clienthello.h"
#include "util/check.h"
#include "wire/ipv4.h"
#include "wire/tcp.h"

namespace tspu::fuzz {
namespace {

wire::Packet tcp_carrier(std::span<const std::uint8_t> l4_bytes) {
  wire::Packet pkt;
  pkt.ip.src = util::Ipv4Addr(0x0a010002);
  pkt.ip.dst = util::Ipv4Addr(0x5db80009);
  pkt.ip.proto = wire::IpProto::kTcp;
  pkt.payload.assign(l4_bytes.begin(), l4_bytes.end());
  return pkt;
}

}  // namespace

int fuzz_ipv4(std::span<const std::uint8_t> data) {
  auto parsed = wire::parse_ipv4(data);
  if (!parsed) return 0;
  // A successful parse must survive a serialize/re-parse round trip with
  // every header field intact (the checksum is recomputed, so a valid parse
  // can never round-trip into an invalid packet).
  const util::Bytes rewire = wire::serialize(*parsed);
  auto again = wire::parse_ipv4(rewire);
  TSPU_CHECK(again.has_value(), "re-serialized IPv4 packet failed to parse");
  TSPU_CHECK(again->ip.src == parsed->ip.src &&
                 again->ip.dst == parsed->ip.dst &&
                 again->ip.proto == parsed->ip.proto &&
                 again->ip.ttl == parsed->ip.ttl &&
                 again->ip.id == parsed->ip.id &&
                 again->ip.frag_offset == parsed->ip.frag_offset &&
                 again->ip.more_fragments == parsed->ip.more_fragments &&
                 again->ip.dont_fragment == parsed->ip.dont_fragment &&
                 again->ip.tos == parsed->ip.tos,
             "IPv4 header fields changed across a round trip");
  TSPU_CHECK(again->payload == parsed->payload,
             "IPv4 payload changed across a round trip");
  return 0;
}

int fuzz_tcp_options(std::span<const std::uint8_t> data) {
  // The interesting surface is the options walk, which runs on packets the
  // middlebox has not checksum-verified — exercise exactly that path.
  const wire::Packet pkt = tcp_carrier(data);
  auto seg = wire::parse_tcp(pkt, /*verify_checksum=*/false);
  // Differential: the zero-copy view must accept exactly the same inputs and
  // decode exactly the same segment as the owning parser (which is specified
  // to be a thin copying wrapper over it).
  auto view = wire::parse_tcp_view(pkt, /*verify_checksum=*/false);
  TSPU_CHECK(seg.has_value() == view.has_value(),
             "parse_tcp and parse_tcp_view disagree on accept/reject");
  if (!seg) return 0;
  TSPU_CHECK(view->hdr.src_port == seg->hdr.src_port &&
                 view->hdr.dst_port == seg->hdr.dst_port &&
                 view->hdr.seq == seg->hdr.seq &&
                 view->hdr.ack == seg->hdr.ack &&
                 view->hdr.flags == seg->hdr.flags &&
                 view->hdr.window == seg->hdr.window &&
                 view->hdr.mss == seg->hdr.mss,
             "parse_tcp_view decoded different header fields than parse_tcp");
  TSPU_CHECK(view->payload.size() == seg->payload.size() &&
                 std::equal(view->payload.begin(), view->payload.end(),
                            seg->payload.begin()),
             "parse_tcp_view payload span differs from the owning copy");
  // Rebuild the segment through the writer; the canonical form (options
  // reduced to at most one MSS) must parse back to the same header.
  const util::Bytes rewire =
      wire::serialize_tcp(pkt.ip.src, pkt.ip.dst, seg->hdr, seg->payload);
  auto again = wire::parse_tcp(tcp_carrier(rewire));
  TSPU_CHECK(again.has_value(), "re-serialized TCP segment failed to parse");
  TSPU_CHECK(again->hdr.src_port == seg->hdr.src_port &&
                 again->hdr.dst_port == seg->hdr.dst_port &&
                 again->hdr.seq == seg->hdr.seq &&
                 again->hdr.ack == seg->hdr.ack &&
                 again->hdr.flags == seg->hdr.flags &&
                 again->hdr.window == seg->hdr.window &&
                 again->hdr.mss == seg->hdr.mss,
             "TCP header fields changed across a round trip");
  TSPU_CHECK(again->payload == seg->payload,
             "TCP payload changed across a round trip");
  return 0;
}

int fuzz_quic_initial(std::span<const std::uint8_t> data) {
  auto hdr = quic::parse_long_header(data);
  if (hdr) {
    TSPU_CHECK(hdr->dcid.size() <= 20 && hdr->scid.size() <= 20,
               "QUIC connection IDs exceed the RFC 9000 cap");
  }
  // The fingerprint must agree with its spec: UDP/443, >= 1001 bytes, and
  // bytes [1..4] equal to 0x00000001 — computed here without ByteReader so
  // the check is independent of the code under test.
  const bool fp = quic::tspu_quic_fingerprint(data, 443);
  const bool expected = data.size() >= 1001 && data[1] == 0x00 &&
                        data[2] == 0x00 && data[3] == 0x00 && data[4] == 0x01;
  TSPU_CHECK(fp == expected, "QUIC fingerprint disagrees with its spec");
  TSPU_CHECK(!quic::tspu_quic_fingerprint(data, 80),
             "QUIC fingerprint must only match destination port 443");
  return 0;
}

int fuzz_dns(std::span<const std::uint8_t> data) {
  auto msg = dns::parse(data);
  if (!msg) return 0;
  // Re-serialization of an accepted message must itself be accepted, with
  // the envelope intact. (Names are not compared byte-for-byte: pointer
  // compression means a parsed name can legitimately re-serialize into a
  // different but equivalent wire form.)
  const util::Bytes rewire = dns::serialize(*msg);
  auto again = dns::parse(rewire);
  TSPU_CHECK(again.has_value(), "re-serialized DNS message failed to parse");
  TSPU_CHECK(again->id == msg->id &&
                 again->is_response == msg->is_response &&
                 again->rcode == msg->rcode &&
                 again->questions.size() == msg->questions.size() &&
                 again->answers.size() == msg->answers.size(),
             "DNS message envelope changed across a round trip");
  return 0;
}

int fuzz_clienthello(std::span<const std::uint8_t> data) {
  auto parsed = tls::parse_client_hello(data);
  auto sni = tls::extract_sni(data);
  // Differential: every zero-copy walk must agree with its owning twin on
  // both accept/reject and every decoded field, for arbitrary input bytes.
  auto view = tls::parse_client_hello_view(data);
  TSPU_CHECK(parsed.has_value() == view.has_value(),
             "parse_client_hello and its view walk disagree on accept/reject");
  if (parsed) {
    TSPU_CHECK(view->sni == parsed->sni &&
                   view->record_version == parsed->record_version &&
                   view->hello_version == parsed->hello_version &&
                   view->cipher_suite_count == parsed->cipher_suite_count &&
                   view->extension_count == parsed->extension_count,
               "ClientHelloView fields differ from the owning parse");
  }
  auto sni_view = tls::find_sni_view(data);
  TSPU_CHECK(sni.has_value() == sni_view.has_value() &&
                 (!sni || *sni == *sni_view),
             "find_sni_view disagrees with extract_sni");
  auto multi = tls::extract_sni_multi_record(data);
  auto multi_view = tls::find_sni_view_multi_record(data);
  TSPU_CHECK(multi.has_value() == multi_view.has_value() &&
                 (!multi || *multi == *multi_view),
             "find_sni_view_multi_record disagrees with the owning scan");
  if (sni) {
    TSPU_CHECK(parsed.has_value(),
               "extract_sni found a name in a ClientHello that fails to parse");
    TSPU_CHECK(*sni == parsed->sni,
               "extract_sni and parse_client_hello disagree on the hostname");
    // The multi-record scanner starts at record 0, so whenever the
    // single-record extractor succeeds it must find the same name.
    TSPU_CHECK(multi.has_value() && *multi == *sni,
               "multi-record scan missed the SNI visible in the first record");
  }
  return 0;
}

std::span<const Target> targets() {
  static constexpr std::array<Target, 5> kTargets = {{
      {"ipv4", &fuzz_ipv4},
      {"tcp_options", &fuzz_tcp_options},
      {"quic_initial", &fuzz_quic_initial},
      {"dns", &fuzz_dns},
      {"clienthello", &fuzz_clienthello},
  }};
  return kTargets;
}

const Target* find_target(const std::string& name) {
  for (const Target& t : targets()) {
    if (name == t.name) return &t;
  }
  return nullptr;
}

}  // namespace tspu::fuzz
