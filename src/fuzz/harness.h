// Fuzz harnesses for the packet parsers the TSPU model trusts with
// adversarial bytes: IPv4 headers, TCP segments (incl. the MSS option walk),
// QUIC Initial long headers + the Figure-14 fingerprint, DNS messages, and
// TLS ClientHellos.
//
// Each entry point has the libFuzzer signature shape — it consumes arbitrary
// bytes, must never crash or trip a sanitizer, and additionally asserts
// semantic invariants (successful parses must re-serialize/re-parse
// consistently). The same functions back two drivers:
//
//   * tools/fuzz_replay — deterministic CTest driver: replays the checked-in
//     seed corpus under tests/corpus/<target>/ plus a bounded mutation sweep
//     (single-byte XOR flips and truncations of every seed). Runs on every
//     toolchain, with or without sanitizers.
//   * libFuzzer binaries (TSPU_FUZZER=ON, Clang only) — coverage-guided
//     exploration using the same corpus as the starting point.
//
// A harness THROWS util::CheckFailure (via TSPU_CHECK) when an invariant
// breaks, which both drivers convert into a failing exit.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tspu::fuzz {

/// One fuzz entry point: feed bytes, return 0 (libFuzzer convention).
/// Invariant violations throw util::CheckFailure; parser bugs crash or trip
/// a sanitizer.
using TargetFn = int (*)(std::span<const std::uint8_t> data);

int fuzz_ipv4(std::span<const std::uint8_t> data);
int fuzz_tcp_options(std::span<const std::uint8_t> data);
int fuzz_quic_initial(std::span<const std::uint8_t> data);
int fuzz_dns(std::span<const std::uint8_t> data);
int fuzz_clienthello(std::span<const std::uint8_t> data);

struct Target {
  const char* name;
  TargetFn fn;
};

/// All registered targets, in stable order (drives both CTest registration
/// and `fuzz_replay --list`).
std::span<const Target> targets();

/// Looks up a target by name; nullptr when unknown.
const Target* find_target(const std::string& name);

}  // namespace tspu::fuzz
