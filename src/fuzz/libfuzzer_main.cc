// tspulint: allow(namespace-module) — extern "C" libFuzzer entry, no namespace
// libFuzzer entry point, compiled once per target with
// -DTSPU_FUZZ_TARGET=<entry> (see src/fuzz/CMakeLists.txt). Requires Clang's
// -fsanitize=fuzzer, so these binaries only exist when TSPU_FUZZER=ON; the
// portable coverage path is tools/fuzz_replay.
#include <cstddef>
#include <cstdint>

#include "fuzz/harness.h"

#ifndef TSPU_FUZZ_TARGET
#error "compile with -DTSPU_FUZZ_TARGET=<fuzz entry point>"
#endif

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return tspu::fuzz::TSPU_FUZZ_TARGET({data, size});
}
