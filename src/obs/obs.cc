#include "obs/obs.h"

#include <cstdlib>
#include <utility>

namespace tspu::obs {

namespace detail {
thread_local TlsState tls;
}  // namespace detail

using detail::tls;

TraceConfig env_trace_config() {
  static const TraceConfig cached = [] {
    TraceConfig cfg;
    const char* trace = std::getenv("TSPU_TRACE");
    cfg.enabled = trace != nullptr && *trace != '\0' &&
                  std::string_view(trace) != "0";
    if (const char* cap = std::getenv("TSPU_TRACE_CAP")) {
      const long v = std::strtol(cap, nullptr, 10);
      if (v > 0) cfg.per_item_cap = static_cast<std::size_t>(v);
    }
    return cfg;
  }();
  return cached;
}

void begin_item(std::size_t index) {
  tls.item = index;
  tls.seq = 0;
  tls.epoch_us = 0;
}

void anchor_epoch(util::Instant now) { tls.epoch_us = now.as_micros(); }

std::int64_t current_epoch_us() { return tls.epoch_us; }

void trace_event(Layer layer, std::string_view kind, util::Instant t,
                 std::string flow, std::string detail,
                 std::string packet_hex) {
  if (!tracing()) return;
  TraceEvent ev;
  ev.t_us = t.as_micros() - tls.epoch_us;
  ev.item = tls.item;
  ev.seq = tls.seq++;
  ev.layer = layer;
  ev.kind = std::string(kind);
  ev.flow = std::move(flow);
  ev.detail = std::move(detail);
  ev.packet_hex = std::move(packet_hex);
  tls.rec->trace.push(std::move(ev));
}

RecorderScope::RecorderScope(Recorder& rec)
    : prev_rec_(tls.rec),
      prev_item_(tls.item),
      prev_seq_(tls.seq),
      prev_epoch_us_(tls.epoch_us),
      prev_mute_(tls.mute) {
  tls.rec = &rec;
  tls.mute = 0;
  tls.item = 0;
  tls.seq = 0;
  tls.epoch_us = 0;
  ++tls.gen;
}

RecorderScope::~RecorderScope() {
  tls.rec = prev_rec_;
  tls.item = prev_item_;
  tls.seq = prev_seq_;
  tls.epoch_us = prev_epoch_us_;
  tls.mute = prev_mute_;
  ++tls.gen;
}

MuteGuard::MuteGuard() { ++tls.mute; }
MuteGuard::~MuteGuard() { --tls.mute; }

void CounterRef::slow_bind() {
  // rec != nullptr was checked by the inline fast path; re-resolve the
  // counter because the thread binding changed since we last cached it.
  cached_ = &tls.rec->metrics.counter(name_);
  cached_gen_ = tls.gen;
}

Span::Span(Layer layer, std::string kind, util::Instant start,
           std::string flow)
    : layer_(layer),
      kind_(std::move(kind)),
      flow_(std::move(flow)),
      start_(start) {
  trace_event(layer_, kind_ + ".begin", start_, flow_);
}

void Span::end(util::Instant stop, std::string detail) {
  if (ended_) return;
  ended_ = true;
  const std::int64_t dur = stop.as_micros() - start_.as_micros();
  Recorder* rec = recorder();
  if (rec != nullptr) {
    rec->metrics.histogram(kind_ + ".us")
        .observe(dur < 0 ? 0 : static_cast<std::uint64_t>(dur));
  }
  std::string d = "dur_us=" + std::to_string(dur);
  if (!detail.empty()) d += " " + detail;
  trace_event(layer_, kind_ + ".end", stop, flow_, std::move(d));
}

Span::~Span() {
  // An un-ended span is closed at its own start: zero duration, visible in
  // the trace as a degenerate span rather than silently lost.
  if (!ended_) end(start_);
}

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out += hex[b >> 4];
    out += hex[b & 0xf];
  }
  return out;
}

bool hex_decode(std::string_view hex, std::string& out) {
  if (hex.size() % 2 != 0) return false;
  out.clear();
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out += static_cast<char>((hi << 4) | lo);
  }
  return true;
}

}  // namespace tspu::obs
