// Flight-recorder facade: per-shard Recorder, thread-local binding, and the
// cheap instrumentation entry points the rest of the tree calls.
//
// Threading model mirrors src/runner: one Recorder per shard thread, bound
// via RecorderScope, merged into the parent recorder in shard order after
// the join. Instrumented code never synchronizes — it only touches its own
// thread's recorder — so tracing cannot perturb scheduling or results.
//
// Gating: when no recorder is bound, or tracing is disabled, CounterRef::add
// is a cached-nullptr check and trace_event is a single branch. The
// TSPU_TRACE env knob is read HERE (src/obs is the one module allowed to
// read the environment; tspulint bans getenv in src/netsim and src/tspu):
//   TSPU_TRACE=1       enable event tracing (counters are always on when a
//                      recorder is bound; events only when tracing is on)
//   TSPU_TRACE_CAP=N   per-item keep-last ring capacity (default 4096)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/time.h"

namespace tspu::obs {

struct TraceConfig {
  bool enabled = false;          // emit TraceEvents (counters are free-standing)
  std::size_t per_item_cap = 4096;
};

/// One TSPU_TRACE/TSPU_TRACE_CAP read, cached for the process lifetime.
TraceConfig env_trace_config();

/// A shard-local (or test-local) flight recorder: metric registry + event
/// ring. Bind with RecorderScope; merge children with merge_from.
class Recorder {
  // Declared first: `trace` below is initialized from it.
  TraceConfig config_;

 public:
  explicit Recorder(TraceConfig config = env_trace_config())
      : config_(config), trace(config_.per_item_cap) {}

  const TraceConfig& config() const { return config_; }

  /// Fold a shard recorder into this one. Counters/histograms sum, gauges
  /// max, trace items are disjoint — call in shard order for a stable ring.
  void merge_from(Recorder&& child) {
    metrics.merge_from(child.metrics);
    trace.merge_from(std::move(child.trace));
  }

  /// Checkpoint serialization: metrics then trace, non-destructive (the
  /// recorder keeps recording afterwards).
  void save_state(util::StateWriter& w) const {
    metrics.save_state(w);
    trace.save_state(w);
  }

  /// Folds a saved recorder in with the merge_from algebra; false on
  /// malformed input (the recorder may then be partially merged — callers
  /// reject the whole snapshot on failure).
  bool load_state(util::StateReader& r) {
    return metrics.load_state(r) && trace.load_state(r);
  }

  MetricsRegistry metrics;
  TraceRing trace;
};

namespace detail {

/// Per-thread recording state. `gen` increments whenever the binding changes
/// so that CounterRef caches from a previous binding cannot be used against
/// a recorder that no longer exists (a new Recorder can reuse the address).
/// Exposed in the header ONLY so recorder()/tracing()/CounterRef::add inline
/// into the per-packet hot paths; everything outside src/obs goes through
/// those accessors. All members constant-initialize, so the thread_local
/// needs no init guard on first touch.
struct TlsState {
  Recorder* rec = nullptr;
  int mute = 0;
  std::uint64_t gen = 0;
  std::size_t item = 0;
  std::uint64_t seq = 0;
  std::int64_t epoch_us = 0;
};

extern thread_local TlsState tls;

}  // namespace detail

/// The recorder bound to this thread, or nullptr. Instrumentation sites
/// must tolerate nullptr (everything in this header already does).
inline Recorder* recorder() {
  return detail::tls.mute > 0 ? nullptr : detail::tls.rec;
}

/// True iff a recorder is bound, tracing is enabled, and no MuteGuard is
/// active. Use to skip building event strings that would be discarded.
inline bool tracing() {
  const detail::TlsState& t = detail::tls;
  return t.mute == 0 && t.rec != nullptr && t.rec->config().enabled;
}

/// Marks the start of work item `index` on this thread: subsequent events
/// carry this item id, the per-item seq restarts, and the epoch resets
/// (anchor_epoch re-anchors it once begin_trial finishes quiescing).
void begin_item(std::size_t index);

/// Anchors the current item's trace epoch at sim-instant `now`: subsequent
/// event timestamps are relative to it. Shard clocks accumulate across the
/// items a shard has run, so absolute times are K-dependent; item-relative
/// times are not.
void anchor_epoch(util::Instant now);

/// This thread's current item epoch in sim microseconds (the value the last
/// anchor_epoch set, 0 after begin_item). Checkpoints record it per item so
/// a resume can audit that a restored shard clock re-anchors identically.
std::int64_t current_epoch_us();

/// Record one trace event on the bound recorder (no-op unless tracing()).
/// `t` is an absolute sim instant; it is stored relative to the item epoch.
void trace_event(Layer layer, std::string_view kind, util::Instant t,
                 std::string flow = {}, std::string detail = {},
                 std::string packet_hex = {});

/// Binds a recorder to this thread for the scope's lifetime, saving and
/// restoring the previous binding AND the previous item/seq/epoch — so a
/// jobs=1 inline run cannot pollute the calling thread's trace state.
class RecorderScope {
 public:
  explicit RecorderScope(Recorder& rec);
  ~RecorderScope();
  RecorderScope(const RecorderScope&) = delete;
  RecorderScope& operator=(const RecorderScope&) = delete;

 private:
  Recorder* prev_rec_;
  std::size_t prev_item_;
  std::uint64_t prev_seq_;
  std::int64_t prev_epoch_us_;
  int prev_mute_;
};

/// Suppresses all recording on this thread while alive. Used around work
/// whose cost depends on shard count — replica construction, begin_trial
/// quiescing — which would otherwise make counters K-dependent.
class MuteGuard {
 public:
  MuteGuard();
  ~MuteGuard();
  MuteGuard(const MuteGuard&) = delete;
  MuteGuard& operator=(const MuteGuard&) = delete;
};

/// A named counter resolved lazily against the bound recorder. The pointer
/// is cached per (thread-binding) generation: rebinding a recorder bumps the
/// generation, invalidating caches that would otherwise dangle into a
/// destroyed registry. `name` must be a string literal (stored by pointer).
class CounterRef {
 public:
  explicit constexpr CounterRef(const char* name) : name_(name) {}

  void add(std::uint64_t delta = 1) {
    const detail::TlsState& t = detail::tls;
    if (t.mute > 0 || t.rec == nullptr) return;
    if (cached_ == nullptr || cached_gen_ != t.gen) {
      slow_bind();
    }
    cached_->add(delta);
  }

 private:
  /// Re-resolves the counter against the current binding (registry lookup);
  /// off the fast path so add() stays a couple of compares per call.
  void slow_bind();

  const char* name_;
  Counter* cached_ = nullptr;
  std::uint64_t cached_gen_ = 0;
};

/// A sim-clock span: records begin/end trace events and feeds the duration
/// into a histogram named `<kind>.us`. Durations are sim-clock only.
class Span {
 public:
  Span(Layer layer, std::string kind, util::Instant start, std::string flow = {});
  void end(util::Instant stop, std::string detail = {});
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Layer layer_;
  std::string kind_;
  std::string flow_;
  util::Instant start_;
  bool ended_ = false;
};

/// Lowercase hex of a byte span — how packet bytes travel inside JSONL.
std::string hex_encode(std::span<const std::uint8_t> bytes);

/// Inverse of hex_encode; returns false on odd length or non-hex input.
bool hex_decode(std::string_view hex, std::string& out);

}  // namespace tspu::obs

/// Bumps the named flight-recorder counter. One static thread_local
/// CounterRef per call site: the unbound-recorder fast path is a TLS load
/// and a null check, and the name is only hashed once per thread binding.
/// `name` must be a string literal.
#define TSPU_OBS_COUNT(name) TSPU_OBS_COUNT_N(name, 1)

#define TSPU_OBS_COUNT_N(name, n)                                      \
  do {                                                                 \
    static thread_local ::tspu::obs::CounterRef tspu_obs_ref_{(name)}; \
    tspu_obs_ref_.add((n));                                            \
  } while (0)
