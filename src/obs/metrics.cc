#include "obs/metrics.h"

#include <bit>
#include <utility>

#include "util/statecodec.h"

namespace tspu::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xf];
          out += hex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Histogram::observe(std::uint64_t v) {
  ++count_;
  sum_ += v;
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
  ++buckets_[std::bit_width(v)];
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

void Histogram::save_state(util::StateWriter& w) const {
  w.u64(count_);
  w.u64(sum_);
  w.u64(min_);
  w.u64(max_);
  for (const std::uint64_t b : buckets_) w.u64(b);
}

bool Histogram::load_state(util::StateReader& r) {
  Histogram h;
  if (!r.u64(h.count_) || !r.u64(h.sum_) || !r.u64(h.min_) || !r.u64(h.max_)) {
    return false;
  }
  for (std::uint64_t& b : h.buckets_) {
    if (!r.u64(b)) return false;
  }
  *this = h;
  return true;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).add(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).set_max(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name).merge_from(h);
  }
}

void MetricsRegistry::save_state(util::StateWriter& w) const {
  w.u32(static_cast<std::uint32_t>(counters_.size()));
  for (const auto& [name, c] : counters_) {
    w.str(name);
    w.u64(c.value());
  }
  w.u32(static_cast<std::uint32_t>(gauges_.size()));
  for (const auto& [name, g] : gauges_) {
    w.str(name);
    w.i64(g.value());
  }
  w.u32(static_cast<std::uint32_t>(histograms_.size()));
  for (const auto& [name, h] : histograms_) {
    w.str(name);
    h.save_state(w);
  }
}

bool MetricsRegistry::load_state(util::StateReader& r) {
  std::uint32_t n = 0;
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::uint64_t v = 0;
    if (!r.str(name) || !r.u64(v)) return false;
    counter(name).add(v);
  }
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    std::int64_t v = 0;
    if (!r.str(name) || !r.i64(v)) return false;
    // A never-seen gauge restores exactly (set_max from the zero default
    // would lose negative levels); an existing one keeps merge semantics.
    const bool fresh = gauges_.find(name) == gauges_.end();
    Gauge& g = gauge(name);
    if (fresh) {
      g.set(v);
    } else {
      g.set_max(v);
    }
  }
  if (!r.u32(n)) return false;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string name;
    Histogram h;
    if (!r.str(name) || !h.load_state(r)) return false;
    histogram(name).merge_from(h);
  }
  return true;
}

std::string MetricsRegistry::to_json(const std::string& indent) const {
  std::string out = "{\n";
  const std::string i1 = indent + "  ";
  const std::string i2 = indent + "    ";

  out += i1 + "\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += i2 + "\"" + json_escape(name) + "\": " + std::to_string(c.value());
  }
  out += first ? "},\n" : "\n" + i1 + "},\n";

  out += i1 + "\"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += i2 + "\"" + json_escape(name) + "\": " + std::to_string(g.value());
  }
  out += first ? "},\n" : "\n" + i1 + "},\n";

  out += i1 + "\"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += i2 + "\"" + json_escape(name) + "\": {\"count\": " +
           std::to_string(h.count()) + ", \"sum\": " + std::to_string(h.sum()) +
           ", \"min\": " + std::to_string(h.min()) +
           ", \"max\": " + std::to_string(h.max()) + "}";
  }
  out += first ? "}\n" : "\n" + i1 + "}\n";

  out += indent + "}";
  return out;
}

}  // namespace tspu::obs
