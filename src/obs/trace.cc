#include "obs/trace.h"

#include <utility>

#include "obs/metrics.h"

namespace tspu::obs {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kNetsim:
      return "netsim";
    case Layer::kDevice:
      return "device";
    case Layer::kConntrack:
      return "conntrack";
    case Layer::kFrag:
      return "frag";
    case Layer::kMeasure:
      return "measure";
    case Layer::kRunner:
      return "runner";
  }
  return "?";
}

std::string TraceEvent::to_jsonl() const {
  std::string out = "{\"item\": " + std::to_string(item) +
                    ", \"seq\": " + std::to_string(seq) +
                    ", \"t_us\": " + std::to_string(t_us) + ", \"layer\": \"" +
                    layer_name(layer) + "\", \"kind\": \"" +
                    json_escape(kind) + "\"";
  if (!flow.empty()) out += ", \"flow\": \"" + json_escape(flow) + "\"";
  if (!detail.empty()) out += ", \"detail\": \"" + json_escape(detail) + "\"";
  if (!packet_hex.empty()) out += ", \"pkt\": \"" + packet_hex + "\"";
  out += "}";
  return out;
}

void TraceRing::push(TraceEvent ev) {
  std::deque<TraceEvent>& ring = items_[ev.item];
  if (ring.size() >= per_item_cap_) ring.pop_front();
  ring.push_back(std::move(ev));
}

void TraceRing::merge_from(TraceRing&& other) {
  for (auto& [item, ring] : other.items_) {
    std::deque<TraceEvent>& mine = items_[item];
    if (mine.empty()) {
      mine = std::move(ring);
      continue;
    }
    for (TraceEvent& ev : ring) {
      if (mine.size() >= per_item_cap_) mine.pop_front();
      mine.push_back(std::move(ev));
    }
  }
  other.items_.clear();
}

std::size_t TraceRing::total_events() const {
  std::size_t n = 0;
  for (const auto& [item, ring] : items_) n += ring.size();
  return n;
}

std::string TraceRing::to_jsonl() const {
  std::string out;
  for (const auto& [item, ring] : items_) {
    for (const TraceEvent& ev : ring) {
      out += ev.to_jsonl();
      out += '\n';
    }
  }
  return out;
}

}  // namespace tspu::obs
