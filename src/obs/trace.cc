#include "obs/trace.h"

#include <utility>

#include "obs/metrics.h"
#include "util/statecodec.h"

namespace tspu::obs {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kNetsim:
      return "netsim";
    case Layer::kDevice:
      return "device";
    case Layer::kConntrack:
      return "conntrack";
    case Layer::kFrag:
      return "frag";
    case Layer::kMeasure:
      return "measure";
    case Layer::kRunner:
      return "runner";
  }
  return "?";
}

std::string TraceEvent::to_jsonl() const {
  std::string out = "{\"item\": " + std::to_string(item) +
                    ", \"seq\": " + std::to_string(seq) +
                    ", \"t_us\": " + std::to_string(t_us) + ", \"layer\": \"" +
                    layer_name(layer) + "\", \"kind\": \"" +
                    json_escape(kind) + "\"";
  if (!flow.empty()) out += ", \"flow\": \"" + json_escape(flow) + "\"";
  if (!detail.empty()) out += ", \"detail\": \"" + json_escape(detail) + "\"";
  if (!packet_hex.empty()) out += ", \"pkt\": \"" + packet_hex + "\"";
  out += "}";
  return out;
}

void TraceRing::push(TraceEvent ev) {
  std::deque<TraceEvent>& ring = items_[ev.item];
  if (ring.size() >= per_item_cap_) ring.pop_front();
  ring.push_back(std::move(ev));
}

void TraceRing::merge_from(TraceRing&& other) {
  for (auto& [item, ring] : other.items_) {
    std::deque<TraceEvent>& mine = items_[item];
    if (mine.empty()) {
      mine = std::move(ring);
      continue;
    }
    for (TraceEvent& ev : ring) {
      if (mine.size() >= per_item_cap_) mine.pop_front();
      mine.push_back(std::move(ev));
    }
  }
  other.items_.clear();
}

std::size_t TraceRing::total_events() const {
  std::size_t n = 0;
  for (const auto& [item, ring] : items_) n += ring.size();
  return n;
}

void TraceEvent::save_state(util::StateWriter& w) const {
  w.i64(t_us);
  w.u64(static_cast<std::uint64_t>(item));
  w.u64(seq);
  w.u8(static_cast<std::uint8_t>(layer));
  w.str(kind);
  w.str(flow);
  w.str(detail);
  w.str(packet_hex);
}

bool TraceEvent::load_state(util::StateReader& r) {
  TraceEvent ev;
  std::uint64_t item64 = 0;
  std::uint8_t layer8 = 0;
  if (!r.i64(ev.t_us) || !r.u64(item64) || !r.u64(ev.seq) || !r.u8(layer8) ||
      !r.str(ev.kind) || !r.str(ev.flow) || !r.str(ev.detail) ||
      !r.str(ev.packet_hex)) {
    return false;
  }
  if (layer8 > static_cast<std::uint8_t>(Layer::kRunner)) return false;
  ev.item = static_cast<std::size_t>(item64);
  ev.layer = static_cast<Layer>(layer8);
  *this = std::move(ev);
  return true;
}

void TraceRing::save_state(util::StateWriter& w) const {
  w.u64(static_cast<std::uint64_t>(per_item_cap_));
  w.u32(static_cast<std::uint32_t>(items_.size()));
  for (const auto& [item, ring] : items_) {
    w.u64(static_cast<std::uint64_t>(item));
    w.u32(static_cast<std::uint32_t>(ring.size()));
    for (const TraceEvent& ev : ring) ev.save_state(w);
  }
}

bool TraceRing::load_state(util::StateReader& r) {
  std::uint64_t saved_cap = 0;  // informational; the live cap wins
  std::uint32_t n_items = 0;
  if (!r.u64(saved_cap) || !r.u32(n_items)) return false;
  for (std::uint32_t i = 0; i < n_items; ++i) {
    std::uint64_t item = 0;
    std::uint32_t n_events = 0;
    if (!r.u64(item) || !r.u32(n_events)) return false;
    for (std::uint32_t j = 0; j < n_events; ++j) {
      TraceEvent ev;
      if (!ev.load_state(r)) return false;
      ev.item = static_cast<std::size_t>(item);
      push(std::move(ev));
    }
  }
  return true;
}

std::string TraceRing::to_jsonl() const {
  std::string out;
  for (const auto& [item, ring] : items_) {
    for (const TraceEvent& ev : ring) {
      out += ev.to_jsonl();
      out += '\n';
    }
  }
  return out;
}

}  // namespace tspu::obs
