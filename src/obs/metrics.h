// MetricsRegistry: named counters/gauges/histograms for the flight recorder.
//
// The paper's methodology is black-box inference from captures; the registry
// is the simulator's answer to "why did that verdict happen" in aggregate —
// every verdict, discard, fault decision, and probe attempt increments a
// named counter, and the whole registry snapshots to deterministic JSON.
//
// Determinism contract: values are derived exclusively from simulation
// events, never from wall clocks, so a snapshot taken after a sharded run is
// byte-identical for every job count (counters and histograms merge by sum,
// gauges by max; see Recorder::merge_from in obs.h). Snapshot ordering is
// lexicographic by metric name.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tspu::util {
class StateReader;
class StateWriter;
}  // namespace tspu::util

namespace tspu::obs {

/// Minimal JSON string escaping (quotes, backslashes, control characters) —
/// shared by the snapshot and JSONL trace emitters.
std::string json_escape(std::string_view s);

/// Monotone event counter. Single-threaded by design: each shard owns its
/// recorder, so no atomics are needed (and none would be deterministic).
class Counter {
 public:
  void add(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Level gauge with peak semantics: merging shards keeps the maximum, the
/// only order-free reduction for a level (sums would double-count replicas).
class Gauge {
 public:
  void set(std::int64_t v) { value_ = v; }
  void set_max(std::int64_t v) {
    if (v > value_) value_ = v;
  }
  std::int64_t value() const { return value_; }

 private:
  std::int64_t value_ = 0;
};

/// Power-of-two-bucket histogram over non-negative integer samples (sizes,
/// microsecond durations). Bucket i holds samples whose bit width is i, so
/// bucket boundaries are exact and platform-independent.
class Histogram {
 public:
  void observe(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  const std::array<std::uint64_t, 65>& buckets() const { return buckets_; }

  void merge_from(const Histogram& other);

  /// Checkpoint serialization: the exact internal state, including the
  /// empty-histogram min sentinel (so save→load→save is byte-stable).
  void save_state(util::StateWriter& w) const;
  /// Overwrites this histogram from a saved stream; false on truncation.
  bool load_state(util::StateReader& r);

 private:
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
  std::array<std::uint64_t, 65> buckets_{};
};

/// Found-or-created registry of named metrics. Node-based storage keeps the
/// returned references stable for the registry's lifetime, which is what
/// lets hot paths cache a Counter* instead of re-hashing the name per event
/// (obs::CounterRef).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Read-only lookup: the counter's value, or 0 when it was never touched —
  /// what the release-mode invariant tests poll.
  std::uint64_t counter_value(std::string_view name) const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Sums counters and histograms, maxes gauges. Shard merging: addition is
  /// commutative, so totals are independent of shard count and merge order.
  void merge_from(const MetricsRegistry& other);

  /// Deterministic snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{...}} with names sorted lexicographically. `indent`
  /// prefixes every emitted line (for embedding in bench reports).
  std::string to_json(const std::string& indent = {}) const;

  /// Checkpoint serialization: every metric by name, names sorted (the map
  /// order), so identical registries produce identical bytes.
  void save_state(util::StateWriter& w) const;
  /// Folds a saved registry into this one with the merge_from algebra
  /// (counters/histograms add, gauges max; a metric the registry has never
  /// seen is restored exactly). False on malformed input.
  bool load_state(util::StateReader& r);

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace tspu::obs
