// TraceRing: a bounded, per-item ring of structured flight-recorder events.
//
// Every event carries a sim-clock timestamp relative to its item's epoch
// (anchored by obs::anchor_epoch at the end of begin_trial), the layer that
// emitted it, a short event kind, an optional flow key, free-form detail,
// and — for packet-bearing events — the serialized packet as hex so that
// tools/trace2txt can re-parse and render it with netsim::pcap::describe.
//
// Determinism contract: the ring is bounded PER ITEM (keep-last semantics,
// default 4096 events, TSPU_TRACE_CAP override). Items are disjoint across
// shards — item i always runs on shard i % K and emits the same events with
// the same relative timestamps regardless of K — so merging shard rings by
// item index reproduces a single-threaded run byte-for-byte. No wall-clock
// values appear anywhere in trace content.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

namespace tspu::util {
class StateReader;
class StateWriter;
}  // namespace tspu::util

namespace tspu::obs {

enum class Layer : std::uint8_t {
  kNetsim,
  kDevice,
  kConntrack,
  kFrag,
  kMeasure,
  kRunner,
};

const char* layer_name(Layer layer);

struct TraceEvent {
  std::int64_t t_us = 0;   // sim clock, relative to the item's epoch
  std::size_t item = 0;    // work-item index (0 outside sharded runs)
  std::uint64_t seq = 0;   // per-item emission order
  Layer layer = Layer::kRunner;
  std::string kind;        // short event name, e.g. "verdict" or "discard"
  std::string flow;        // flow key rendering, empty if not flow-scoped
  std::string detail;      // free-form context
  std::string packet_hex;  // serialized wire::Packet, empty if none

  /// One JSONL line (no trailing newline), keys in fixed order.
  std::string to_jsonl() const;

  void save_state(util::StateWriter& w) const;
  /// Overwrites this event; false on truncation or an out-of-range layer.
  bool load_state(util::StateReader& r);
};

class TraceRing {
 public:
  explicit TraceRing(std::size_t per_item_cap) : per_item_cap_(per_item_cap) {}

  /// Keep-last per item: once an item's ring is full, the oldest event of
  /// THAT item is evicted. A global cap would evict different events for
  /// different shard counts and break jobs-invariance.
  void push(TraceEvent ev);

  /// Fold another ring in. Item sets are disjoint across shards, so this is
  /// a plain per-item move; a duplicated item index would mean the sharding
  /// contract was violated and the events are appended in seq order.
  void merge_from(TraceRing&& other);

  std::size_t total_events() const;
  bool empty() const { return items_.empty(); }

  /// All events, ordered by (item, seq), one JSON object per line.
  std::string to_jsonl() const;

  /// Checkpoint serialization: every per-item ring in item order.
  void save_state(util::StateWriter& w) const;
  /// Folds saved rings in with the merge_from semantics (saved item sets
  /// are disjoint from live ones across a resume). False on garbage.
  bool load_state(util::StateReader& r);

 private:
  std::size_t per_item_cap_;
  // deque per item: O(1) keep-last eviction, stable iteration order.
  std::map<std::size_t, std::deque<TraceEvent>> items_;
};

}  // namespace tspu::obs
