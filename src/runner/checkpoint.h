// Deterministic checkpoint/resume for sharded campaigns.
//
// A campaign built on ShardRunner::map can run for hours (a 1:1-scale
// national scan probes millions of endpoints); preemption or a SIGTERM used
// to throw all of it away. checkpointed_map() is map() with a durability
// contract: the full per-shard trial state — completed results, per-shard
// context state (device tables, RNG cursors, host counters), and the flight
// recorder — is serialized into a versioned, length-prefixed snapshot,
// written atomically every N items and on SIGTERM. Resuming from the
// snapshot continues the campaign such that the final result vector, the
// merged metrics JSON, and the trace JSONL are byte-identical to an
// uninterrupted run, at any job count.
//
// Why this works:
//  * Results: the runner's determinism contract already makes item i's
//    result a pure function of (replica config + seed, item_seed(root, i)).
//    Completed items are reloaded verbatim; remaining items recompute to
//    the same bytes on any shard.
//  * Shard state: execution proceeds in WAVES (a fixed slice of items, a
//    multiple of the job count) with a barrier between waves; snapshots are
//    taken only at barriers, so each shard's context state is quiescent and
//    serializable. On resume with the same job count the saved state is
//    reloaded exactly; with a different job count fresh replicas are built
//    instead, which the determinism contract proves equivalent.
//  * Observability: the Recorder merge algebra is commutative and
//    associative (counters/histograms sum, gauges max, trace items are
//    disjoint per item), so saved per-shard recorder blobs merged at
//    completion produce the same snapshot as never having stopped.
//
// The runner layer cannot see topo/ or measure/, so the campaign-specific
// encoding lives in a Codec object the caller supplies (see
// measure/scan.h's checkpointed national scan for the canonical one).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"
#include "util/statecodec.h"

namespace tspu::runner {

struct CheckpointOptions {
  /// Snapshot file. Empty disables checkpointing entirely (checkpointed_map
  /// then degenerates to a single wave with no snapshot I/O).
  std::string path;
  /// Snapshot cadence in items; rounded up to a multiple of the job count
  /// so snapshots land on wave barriers. 0 behaves as 1 wave = jobs items.
  std::size_t every_n_items = 64;
  /// Load `path` before running and continue from its next_index.
  bool resume = false;
  /// Test/CI hook modelling a kill at item K: once at least this many items
  /// have completed (and the campaign is not finished), write a snapshot
  /// and throw CampaignInterrupted. 0 disables.
  std::size_t abort_after_items = 0;
};

/// Thrown by checkpointed_map when the campaign stops early (SIGTERM or the
/// abort_after_items hook) — AFTER the snapshot was written, so the catcher
/// can report the resume path and exit cleanly.
class CampaignInterrupted : public std::exception {
 public:
  CampaignInterrupted(std::string path, std::size_t completed)
      : path_(std::move(path)),
        completed_(completed),
        what_("campaign interrupted after " + std::to_string(completed) +
              " items; checkpoint written to " + path_) {}

  const char* what() const noexcept override { return what_.c_str(); }
  const std::string& checkpoint_path() const { return path_; }
  std::size_t items_completed() const { return completed_; }

 private:
  std::string path_;
  std::size_t completed_;
  std::string what_;
};

/// Installs a SIGTERM handler that latches a flag checked at every wave
/// barrier; the in-progress wave finishes, a snapshot is written, and
/// checkpointed_map throws CampaignInterrupted. Safe to call repeatedly.
void install_sigterm_checkpoint();
/// True once SIGTERM was delivered after install_sigterm_checkpoint().
bool sigterm_requested();
/// Clears the latch (tests that raise SIGTERM at themselves).
void reset_sigterm_for_testing();

// ---------------------------------------------------------------------------
// Snapshot container
// ---------------------------------------------------------------------------

/// In-memory form of one snapshot file. Blobs are opaque here; their
/// encoding belongs to the campaign's Codec.
struct Snapshot {
  /// Campaign identity (config hash); resume refuses a mismatch.
  std::uint64_t identity = 0;
  std::uint64_t n_items = 0;
  /// Completed prefix: items [0, next_index) are present in `results`.
  std::uint64_t next_index = 0;
  /// Job count at save time; shard_blobs is exactly this long.
  std::uint32_t shard_count = 0;
  std::vector<std::pair<std::uint64_t, std::string>> results;
  /// Per-shard recorder states, PLUS any base blobs inherited from earlier
  /// interrupted generations (a resume of a resume) — merged in order at
  /// campaign completion.
  std::vector<std::string> recorder_blobs;
  std::vector<std::string> shard_blobs;
};

/// Serializes and writes a snapshot atomically: the versioned image
/// (magic, version, body length, FNV-1a checksum, body) goes to
/// `path` + ".tmp" first and is renamed over `path` only once fully
/// written, so a kill mid-write never corrupts the previous snapshot.
bool write_snapshot(const std::string& path, const Snapshot& snapshot);

/// Reads and strictly validates a snapshot: bad magic/version, a short
/// file, a checksum mismatch, or trailing garbage all yield nullopt —
/// never UB, whatever the bytes are.
std::optional<Snapshot> read_snapshot(const std::string& path);

/// Every trial-isolation reset/reseed hook whose underlying mutable state
/// the checkpoint codecs capture (or re-derive statelessly per item).
/// tspulint's ckpt-coverage rule cross-checks this list against the callees
/// of begin_trial/reseed definitions: state reset at a trial boundary must
/// round-trip through a codec or carry an explicit allow marker.
extern const char* const kCheckpointCodecRegistry[];
extern const std::size_t kCheckpointCodecRegistrySize;

namespace detail {

/// Emplace adapter: lets std::optional<Ctx>::emplace build a non-movable
/// context in place via guaranteed copy elision of make(shard)'s return.
template <typename Make, typename Ctx>
struct CtxEmplacer {
  Make& make;
  int shard;
  operator Ctx() && { return make(shard); }  // NOLINT: implicit by design
};

}  // namespace detail

/// ShardRunner::map with checkpoint/resume. `codec` supplies the
/// campaign-specific encoding:
///
///   std::uint64_t identity() const;                  // config hash
///   void encode(const Result&, util::StateWriter&);  // result -> blob
///   bool decode(Result&, util::StateReader&);        // blob -> result
///   void save_shard(Ctx&, util::StateWriter&);       // context -> blob
///   bool load_shard(Ctx&, util::StateReader&);       // blob -> context
///
/// Result must be default-constructible (decode target). encode(decode(b))
/// must reproduce b byte-for-byte — the snapshot is re-encoded from decoded
/// results on the next checkpoint, and the codec property tests pin this.
///
/// Throws CampaignInterrupted (snapshot already written) on SIGTERM or the
/// abort_after_items hook; throws std::runtime_error when a resume snapshot
/// is missing, corrupt, or from a different campaign.
template <typename MakeCtx, typename Fn, typename Codec>
auto checkpointed_map(std::size_t n_items, int jobs_requested,
                      MakeCtx&& make_ctx, Fn&& fn, Codec&& codec,
                      const CheckpointOptions& opts) {
  using Ctx = std::invoke_result_t<MakeCtx&, int>;
  using Result = std::invoke_result_t<Fn&, Ctx&, std::size_t>;
  static_assert(std::is_default_constructible_v<Result>,
                "checkpointed_map results must be default-constructible "
                "(snapshot decode target)");

  if (n_items == 0) return std::vector<Result>{};
  const int jobs = static_cast<int>(std::min<std::size_t>(
      static_cast<std::size_t>(effective_jobs(jobs_requested)), n_items));
  const std::size_t uj = static_cast<std::size_t>(jobs);

  std::vector<std::optional<Result>> slots(n_items);
  obs::Recorder* parent = obs::recorder();
  std::vector<std::unique_ptr<obs::Recorder>> children(uj);
  std::vector<std::optional<Ctx>> contexts(uj);
  /// Saved shard-context blobs, applied once when a shard first builds its
  /// replica. Populated only when the snapshot's job count matches ours;
  /// otherwise fresh replicas are equivalent by the determinism contract.
  std::vector<std::string> shard_restore;
  /// Recorder blobs inherited from interrupted generations; merged into the
  /// parent at completion and carried forward into every snapshot so a
  /// resume-of-a-resume still reproduces the full history.
  std::vector<std::string> base_recorders;

  std::size_t start = 0;
  if (opts.resume) {
    std::optional<Snapshot> snap = read_snapshot(opts.path);
    if (!snap) {
      throw std::runtime_error("checkpoint: cannot resume from '" +
                               opts.path + "': missing or corrupt snapshot");
    }
    if (snap->identity != codec.identity() || snap->n_items != n_items ||
        snap->next_index > n_items ||
        snap->results.size() != snap->next_index) {
      throw std::runtime_error(
          "checkpoint: snapshot belongs to a different campaign");
    }
    for (const auto& [index, blob] : snap->results) {
      if (index >= n_items) {
        throw std::runtime_error("checkpoint: result index out of range");
      }
      util::StateReader r(blob);
      Result res{};
      if (!codec.decode(res, r) || !r.done()) {
        throw std::runtime_error("checkpoint: result blob rejected");
      }
      slots[index].emplace(std::move(res));
    }
    base_recorders = std::move(snap->recorder_blobs);
    if (snap->shard_count == static_cast<std::uint32_t>(jobs)) {
      shard_restore = std::move(snap->shard_blobs);
    }
    start = static_cast<std::size_t>(snap->next_index);
  }

  // Wave size: the checkpoint cadence rounded up to a shard multiple so a
  // snapshot always happens at a barrier, with every shard quiescent.
  std::size_t chunk = n_items;
  if (!opts.path.empty()) {
    chunk = ((std::max<std::size_t>(opts.every_n_items, 1) + uj - 1) / uj) * uj;
  }

  auto take_checkpoint = [&](std::size_t completed) {
    Snapshot snap;
    snap.identity = codec.identity();
    snap.n_items = n_items;
    snap.next_index = completed;
    snap.shard_count = static_cast<std::uint32_t>(jobs);
    snap.results.reserve(completed);
    for (std::size_t i = 0; i < completed; ++i) {
      util::StateWriter w;
      codec.encode(*slots[i], w);
      snap.results.emplace_back(i, w.take());
    }
    snap.recorder_blobs = base_recorders;
    for (const std::unique_ptr<obs::Recorder>& child : children) {
      if (!child) continue;
      util::StateWriter w;
      child->save_state(w);
      snap.recorder_blobs.push_back(w.take());
    }
    for (std::optional<Ctx>& ctx : contexts) {
      util::StateWriter w;
      if (ctx) codec.save_shard(*ctx, w);
      snap.shard_blobs.push_back(w.take());
    }
    if (!write_snapshot(opts.path, snap)) {
      throw std::runtime_error("checkpoint: cannot write snapshot to '" +
                               opts.path + "'");
    }
  };

  for (std::size_t wave_begin = start; wave_begin < n_items;) {
    const std::size_t wave_end = std::min(n_items, wave_begin + chunk);
    runner::detail::run_shards(jobs, [&](int shard) {
      const auto us = static_cast<std::size_t>(shard);
      std::optional<obs::RecorderScope> scope;
      if (parent != nullptr) {
        if (!children[us]) {
          children[us] = std::make_unique<obs::Recorder>(parent->config());
        }
        scope.emplace(*children[us]);
      }
      if (!contexts[us]) {
        {
          obs::MuteGuard mute;
          contexts[us].emplace(
              detail::CtxEmplacer<MakeCtx, Ctx>{make_ctx, shard});
        }
        if (us < shard_restore.size()) {
          util::StateReader r(shard_restore[us]);
          if (!codec.load_shard(*contexts[us], r) || !r.done()) {
            throw std::runtime_error(
                "checkpoint: shard state blob rejected on resume");
          }
        }
      }
      // Item i belongs to shard i % jobs, exactly as in ShardRunner::map;
      // the first owned index at or after wave_begin:
      std::size_t i = wave_begin + ((us + uj - wave_begin % uj) % uj);
      for (; i < wave_end; i += uj) {
        obs::begin_item(i);
        slots[i].emplace(fn(*contexts[us], i));
      }
    });
    wave_begin = wave_end;

    const bool finished = wave_end == n_items;
    const bool interrupted =
        sigterm_requested() ||
        (opts.abort_after_items != 0 && wave_end >= opts.abort_after_items &&
         !finished);
    if (!opts.path.empty() && (!finished || interrupted)) {
      take_checkpoint(wave_end);
    }
    if (interrupted) throw CampaignInterrupted(opts.path, wave_end);
  }

  if (parent != nullptr) {
    for (const std::string& blob : base_recorders) {
      obs::Recorder base(parent->config());
      util::StateReader r(blob);
      if (!base.load_state(r) || !r.done()) {
        throw std::runtime_error("checkpoint: recorder blob rejected");
      }
      parent->merge_from(std::move(base));
    }
    for (std::unique_ptr<obs::Recorder>& child : children) {
      if (child) parent->merge_from(std::move(*child));
    }
  }

  std::vector<Result> out;
  out.reserve(n_items);
  for (std::optional<Result>& slot : slots) out.push_back(std::move(*slot));
  return out;
}

}  // namespace tspu::runner
