#include "runner/checkpoint.h"

#include <csignal>
#include <cstdio>

namespace tspu::runner {
namespace {

// 'TCKP' — TSPU checkpoint. Little-endian on the wire like every
// StateWriter integer.
constexpr std::uint32_t kMagic = 0x504b4354u;
constexpr std::uint32_t kVersion = 1;

// SIGTERM latch. sig_atomic_t + volatile is the only state a strictly
// conforming handler may touch; the wave barrier polls it, so the handler
// itself never does I/O.
volatile std::sig_atomic_t g_sigterm_latch = 0;

void sigterm_handler(int) { g_sigterm_latch = 1; }

}  // namespace

void install_sigterm_checkpoint() {
  std::signal(SIGTERM, &sigterm_handler);
}

bool sigterm_requested() { return g_sigterm_latch != 0; }

void reset_sigterm_for_testing() { g_sigterm_latch = 0; }

// Campaign-lifecycle hooks whose state the checkpoint layer accounts for;
// see the header comment and docs/checkpointing.md for the per-entry story.
const char* const kCheckpointCodecRegistry[] = {
    // Stateful cursors captured by a codec:
    "reseed",                   // core::Device rng/fault runtime -> Device::save_state
    "reseed_eviction",          // ConnTracker/FragmentEngine evict RNG lanes
    "reset_protocol_counters",  // netsim::Host::protocol_counters() packing
    "reset_dns_query_ids",      // ispdpi::dns_query_id_cursor()
    "reset_buffer_pool",        // util::BufferPool::high_water() mark
    "anchor_epoch",             // obs::current_epoch_us() + recorder blobs
    // Stateless per-item streams, re-derived from item_seed on every
    // begin_trial — nothing survives an item boundary to snapshot:
    "reseed_stochastic",        // topo fan-out root (splitmix64 of item seed)
    "reseed_fault_rngs",        // per-link fault streams (fault_stream_seed)
    "seed_loss_rng",            // network loss stream
    // Reset to empty per item; capture/flow buffers never cross items:
    "reset_traffic_state",      // netsim::Host captures/flows/reassembly
};
const std::size_t kCheckpointCodecRegistrySize =
    sizeof(kCheckpointCodecRegistry) / sizeof(kCheckpointCodecRegistry[0]);

bool write_snapshot(const std::string& path, const Snapshot& snapshot) {
  util::StateWriter body;
  body.u64(snapshot.identity);
  body.u64(snapshot.n_items);
  body.u64(snapshot.next_index);
  body.u32(snapshot.shard_count);
  body.u32(static_cast<std::uint32_t>(snapshot.results.size()));
  for (const auto& [index, blob] : snapshot.results) {
    body.u64(index);
    body.str(blob);
  }
  body.u32(static_cast<std::uint32_t>(snapshot.recorder_blobs.size()));
  for (const std::string& blob : snapshot.recorder_blobs) body.str(blob);
  body.u32(static_cast<std::uint32_t>(snapshot.shard_blobs.size()));
  for (const std::string& blob : snapshot.shard_blobs) body.str(blob);

  util::StateWriter image;
  image.u32(kMagic);
  image.u32(kVersion);
  image.u32(static_cast<std::uint32_t>(body.size()));
  image.u64(util::fnv1a64(body.data()));
  const std::string file = std::string(image.data()) + std::string(body.data());

  // Atomic publication: a crash mid-write leaves only the .tmp behind and
  // the previous snapshot (if any) intact; rename() swaps whole files.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(file.data(), 1, file.size(), f) == file.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Snapshot> read_snapshot(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::nullopt;
  std::string file;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) file.append(buf, n);
  std::fclose(f);

  util::StateReader header(file);
  std::uint32_t magic = 0, version = 0, body_len = 0;
  std::uint64_t checksum = 0;
  if (!header.u32(magic) || !header.u32(version) || !header.u32(body_len) ||
      !header.u64(checksum)) {
    return std::nullopt;
  }
  if (magic != kMagic || version != kVersion) return std::nullopt;
  if (header.remaining() != body_len) return std::nullopt;
  const std::string_view body_bytes =
      std::string_view(file).substr(file.size() - body_len);
  if (util::fnv1a64(body_bytes) != checksum) return std::nullopt;

  util::StateReader body(body_bytes);
  Snapshot snap;
  std::uint32_t n_results = 0;
  if (!body.u64(snap.identity) || !body.u64(snap.n_items) ||
      !body.u64(snap.next_index) || !body.u32(snap.shard_count) ||
      !body.u32(n_results)) {
    return std::nullopt;
  }
  // Element floor of 12 bytes (u64 index + empty str) bounds reserve() on
  // hostile counts before any allocation happens.
  if (n_results > body.remaining() / 12) return std::nullopt;
  snap.results.reserve(n_results);
  for (std::uint32_t i = 0; i < n_results; ++i) {
    std::uint64_t index = 0;
    std::string blob;
    if (!body.u64(index) || !body.str(blob)) return std::nullopt;
    snap.results.emplace_back(index, std::move(blob));
  }
  auto read_blob_list = [&body](std::vector<std::string>& out) {
    std::uint32_t count = 0;
    if (!body.u32(count)) return false;
    if (count > body.remaining() / 4) return false;
    out.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      std::string blob;
      if (!body.str(blob)) return false;
      out.push_back(std::move(blob));
    }
    return true;
  };
  if (!read_blob_list(snap.recorder_blobs)) return std::nullopt;
  if (!read_blob_list(snap.shard_blobs)) return std::nullopt;
  if (!body.done()) return std::nullopt;
  return snap;
}

}  // namespace tspu::runner
