// Deterministic sharded execution of independent simulation work items.
//
// The paper's measurements are embarrassingly parallel: every endpoint probe,
// domain test, and reliability trial runs against its own miniature internet.
// The runner exploits that by giving each of K worker threads a private
// replica of the world (rebuilt from the same config + seed, so replicas are
// identical) and assigning items round-robin: item i runs on shard i % K.
//
// Determinism contract: a work item's result may depend only on (a) the
// replica's configuration and seed, and (b) the item's own index/seed — never
// on which items ran before it on the same replica. Callers enforce (b) with
// the topo begin_trial()/reseed hooks; the runner then guarantees the merged
// result vector is bit-identical for every K, including K=1, because slot i
// is written only by the shard that owns item i and shards never share state.
//
// This is the only place in src/ allowed to touch threads: tspulint's
// raw-thread rule keeps ad-hoc concurrency (and with it nondeterminism) out
// of the simulation and measurement layers.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace tspu::runner {

/// Number of worker threads the hardware supports (always >= 1).
int hardware_jobs();

/// Resolves a requested job count: values <= 0 mean "use hardware_jobs()";
/// positive values are taken as-is (oversubscription is allowed — results
/// do not depend on the count).
int effective_jobs(int requested);

/// Deterministic per-item seed: splitmix64 of (root, index), so neighboring
/// items get uncorrelated RNG streams and item i's seed never depends on how
/// many items ran before it.
std::uint64_t item_seed(std::uint64_t root, std::uint64_t index);

namespace detail {

/// Runs body(shard) on `jobs` worker threads and joins them all; with
/// jobs == 1 the body runs inline on the calling thread. Exceptions are
/// captured per shard and the lowest shard's exception is rethrown after
/// the join, so error reporting is deterministic too.
void run_shards(int jobs, const std::function<void(int shard)>& body);

}  // namespace detail

/// Splits [0, n_items) across worker threads, each with its own context.
class ShardRunner {
 public:
  /// jobs <= 0 selects hardware concurrency.
  explicit ShardRunner(int jobs = 0) : jobs_(effective_jobs(jobs)) {}

  int jobs() const { return jobs_; }

  /// Runs fn(ctx, i) for every i in [0, n_items), where each shard processes
  /// its items in increasing index order against the context make_ctx(shard)
  /// built on that shard's own thread. Returns results in item-index order.
  ///
  /// make_ctx must build the context in its return statement (guaranteed
  /// copy elision covers non-movable worlds like topo::NationalTopology);
  /// wrap multi-step setup in a struct of unique_ptrs if needed.
  template <typename MakeCtx, typename Fn>
  auto map(std::size_t n_items, MakeCtx&& make_ctx, Fn&& fn) const {
    using Ctx = std::invoke_result_t<MakeCtx&, int>;
    using Result = std::invoke_result_t<Fn&, Ctx&, std::size_t>;
    static_assert(!std::is_void_v<Result>,
                  "shard_map items must return a value to merge");

    if (n_items == 0) return std::vector<Result>{};
    std::vector<std::optional<Result>> slots(n_items);
    // Never spawn more shards than items: each shard builds a full world
    // replica, which is the expensive part.
    const int jobs = static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs_), n_items));

    // Flight recorder: each shard records into a private child recorder,
    // merged into the caller's recorder in shard order after the join.
    // Counters merge by commutative sums and trace items are disjoint
    // (item i only ever runs on shard i % jobs), so the merged snapshot is
    // identical for every job count. Replica construction is muted: jobs=K
    // builds K replicas, so its events are inherently K-dependent.
    obs::Recorder* parent = obs::recorder();
    std::vector<std::unique_ptr<obs::Recorder>> children(
        static_cast<std::size_t>(jobs));

    detail::run_shards(jobs, [&](int shard) {
      std::optional<obs::RecorderScope> scope;
      if (parent != nullptr) {
        children[static_cast<std::size_t>(shard)] =
            std::make_unique<obs::Recorder>(parent->config());
        scope.emplace(*children[static_cast<std::size_t>(shard)]);
      }
      Ctx ctx = [&] {
        obs::MuteGuard mute;
        return make_ctx(shard);
      }();
      for (std::size_t i = static_cast<std::size_t>(shard); i < n_items;
           i += static_cast<std::size_t>(jobs)) {
        obs::begin_item(i);
        slots[i].emplace(fn(ctx, i));
      }
    });

    if (parent != nullptr) {
      for (std::unique_ptr<obs::Recorder>& child : children) {
        if (child) parent->merge_from(std::move(*child));
      }
    }

    std::vector<Result> out;
    out.reserve(n_items);
    for (std::optional<Result>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

 private:
  int jobs_;
};

/// One-shot convenience over ShardRunner::map.
template <typename MakeCtx, typename Fn>
auto shard_map(std::size_t n_items, int jobs, MakeCtx&& make_ctx, Fn&& fn) {
  return ShardRunner(jobs).map(n_items, std::forward<MakeCtx>(make_ctx),
                               std::forward<Fn>(fn));
}

/// Context-free variant for items that carry all their state: fn(i).
template <typename Fn>
auto parallel_map(std::size_t n_items, int jobs, Fn&& fn) {
  return shard_map(n_items, jobs, [](int) { return 0; },
                   [&fn](int&, std::size_t i) { return fn(i); });
}

}  // namespace tspu::runner
