#include "runner/runner.h"

#include <thread>

namespace tspu::runner {

int hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int effective_jobs(int requested) {
  return requested <= 0 ? hardware_jobs() : requested;
}

std::uint64_t item_seed(std::uint64_t root, std::uint64_t index) {
  // splitmix64 finalizer over a golden-ratio stride — the same construction
  // util::Rng uses to expand one seed into independent streams.
  std::uint64_t z = root + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

namespace detail {

void run_shards(int jobs, const std::function<void(int shard)>& body) {
  if (jobs <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(jobs));
  std::vector<std::thread> workers;
  workers.reserve(static_cast<std::size_t>(jobs));
  for (int shard = 0; shard < jobs; ++shard) {
    workers.emplace_back([&body, &errors, shard] {
      try {
        body(shard);
      } catch (...) {
        errors[static_cast<std::size_t>(shard)] = std::current_exception();
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (const std::exception_ptr& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace detail
}  // namespace tspu::runner
