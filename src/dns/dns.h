// Minimal DNS message codec: A queries and responses.
//
// Russian ISPs' own censorship (the "decentralized model" being superseded,
// §6.2) is DNS-based: ISP resolvers answer queries for blocklisted domains
// with the IP of the ISP's blockpage. This codec supports that workload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/ip.h"

namespace tspu::dns {

inline constexpr std::uint16_t kTypeA = 1;
inline constexpr std::uint16_t kClassIn = 1;
inline constexpr std::uint16_t kDnsPort = 53;

struct Question {
  std::string name;
  std::uint16_t qtype = kTypeA;
};

struct Answer {
  std::string name;
  std::uint16_t rtype = kTypeA;
  std::uint32_t ttl = 300;
  util::Ipv4Addr address;  ///< for A records
};

struct Message {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t rcode = 0;  ///< 0 = NOERROR, 3 = NXDOMAIN
  std::vector<Question> questions;
  std::vector<Answer> answers;
};

/// Builds an A query for `name`.
Message make_query(std::uint16_t id, const std::string& name);

/// Builds a response answering `query`'s first question with `address`.
Message make_response(const Message& query, util::Ipv4Addr address);

/// Builds an NXDOMAIN response to `query`.
Message make_nxdomain(const Message& query);

util::Bytes serialize(const Message& msg);
[[nodiscard]] std::optional<Message> parse(std::span<const std::uint8_t> data);

}  // namespace tspu::dns
