#include "dns/dns.h"

#include "util/strings.h"

namespace tspu::dns {
namespace {

void write_name(util::ByteWriter& w, const std::string& name) {
  for (const std::string& label : util::split(name, '.')) {
    if (label.empty() || label.size() > 63)
      throw util::ParseError("bad DNS label in '" + name + "'");
    w.u8(static_cast<std::uint8_t>(label.size()));
    w.raw(label);
  }
  w.u8(0);
}

std::string read_name(util::ByteReader& r) {
  std::string name;
  for (;;) {
    const std::uint8_t len = r.u8();
    if (len == 0) break;
    if (len > 63) throw util::ParseError("DNS compression not supported");
    if (!name.empty()) name += '.';
    name += r.str(len);
  }
  return name;
}

}  // namespace

Message make_query(std::uint16_t id, const std::string& name) {
  Message m;
  m.id = id;
  m.questions.push_back({name, kTypeA});
  return m;
}

Message make_response(const Message& query, util::Ipv4Addr address) {
  Message m;
  m.id = query.id;
  m.is_response = true;
  m.questions = query.questions;
  if (!query.questions.empty()) {
    m.answers.push_back({query.questions.front().name, kTypeA, 300, address});
  }
  return m;
}

Message make_nxdomain(const Message& query) {
  Message m;
  m.id = query.id;
  m.is_response = true;
  m.rcode = 3;
  m.questions = query.questions;
  return m;
}

util::Bytes serialize(const Message& msg) {
  util::ByteWriter w;
  w.u16(msg.id);
  std::uint16_t flags = 0;
  if (msg.is_response) flags |= 0x8000;
  flags |= 0x0100;  // RD
  if (msg.is_response) flags |= 0x0080;  // RA
  flags |= msg.rcode & 0x0f;
  w.u16(flags);
  w.u16(static_cast<std::uint16_t>(msg.questions.size()));
  w.u16(static_cast<std::uint16_t>(msg.answers.size()));
  w.u16(0);  // NS count
  w.u16(0);  // AR count
  for (const Question& q : msg.questions) {
    write_name(w, q.name);
    w.u16(q.qtype);
    w.u16(kClassIn);
  }
  for (const Answer& a : msg.answers) {
    write_name(w, a.name);
    w.u16(a.rtype);
    w.u16(kClassIn);
    w.u32(a.ttl);
    w.u16(4);  // rdlength for A
    w.u32(a.address.value());
  }
  return std::move(w).take();
}

std::optional<Message> parse(std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    Message m;
    m.id = r.u16();
    const std::uint16_t flags = r.u16();
    m.is_response = (flags & 0x8000) != 0;
    m.rcode = flags & 0x0f;
    const std::uint16_t qd = r.u16();
    const std::uint16_t an = r.u16();
    r.skip(4);  // NS/AR counts
    for (std::uint16_t i = 0; i < qd; ++i) {
      Question q;
      q.name = read_name(r);
      q.qtype = r.u16();
      r.skip(2);  // class
      m.questions.push_back(std::move(q));
    }
    for (std::uint16_t i = 0; i < an; ++i) {
      Answer a;
      a.name = read_name(r);
      a.rtype = r.u16();
      r.skip(2);  // class
      a.ttl = r.u32();
      const std::uint16_t rdlen = r.u16();
      if (a.rtype == kTypeA && rdlen == 4) {
        a.address = util::Ipv4Addr(r.u32());
      } else {
        r.skip(rdlen);
      }
      m.answers.push_back(std::move(a));
    }
    return m;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

}  // namespace tspu::dns
