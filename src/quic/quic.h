// QUIC initial-packet construction and the TSPU's QUIC fingerprint (Fig 14).
//
// The TSPU detects QUIC purely from plaintext byte patterns: a UDP packet to
// port 443 whose payload is at least 1001 bytes and whose bytes [1..4] equal
// the QUIC v1 version 0x00000001 (§5.2, Appendix A). Other version values
// (draft-29 = 0xff00001d, quicping = 0xbabababa) are NOT matched, which is
// why those evade (§5.2).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/bytes.h"

namespace tspu::quic {

inline constexpr std::uint32_t kVersion1 = 0x00000001;
inline constexpr std::uint32_t kVersionDraft29 = 0xff00001d;
inline constexpr std::uint32_t kVersionQuicPing = 0xbabababa;
inline constexpr std::uint16_t kQuicPort = 443;
/// Fingerprint only fires on payloads of at least this many bytes.
inline constexpr std::size_t kMinFingerprintLen = 1001;

struct InitialPacketSpec {
  std::uint32_t version = kVersion1;
  util::Bytes dcid = {0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08};
  util::Bytes scid = {0x0a, 0x0b, 0x0c, 0x0d};
  /// Total UDP payload size after padding; QUIC clients pad Initials to fill
  /// the datagram (real stacks pad to >= 1200 bytes).
  std::size_t padded_size = 1200;
  std::uint8_t filler = 0xff;
};

/// Builds a QUIC long-header Initial packet: first byte 0xc0|…, 4-byte
/// version, DCID/SCID with length prefixes, padded with `filler` to
/// `padded_size`. The crypto payload is opaque filler — the TSPU never looks
/// past the version field.
util::Bytes build_initial(const InitialPacketSpec& spec);

/// Parsed long-header prefix (enough for fingerprinting and tests).
struct LongHeader {
  std::uint32_t version = 0;
  util::Bytes dcid;
  util::Bytes scid;
};

[[nodiscard]] std::optional<LongHeader> parse_long_header(
    std::span<const std::uint8_t> data);

/// The exact TSPU predicate of Figure 14, applied to a UDP payload destined
/// to `dst_port`. True = this packet starts censorship of the flow.
[[nodiscard]] bool tspu_quic_fingerprint(
    std::span<const std::uint8_t> udp_payload, std::uint16_t dst_port);

std::string version_name(std::uint32_t version);

}  // namespace tspu::quic
