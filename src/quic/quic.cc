#include "quic/quic.h"

namespace tspu::quic {

util::Bytes build_initial(const InitialPacketSpec& spec) {
  util::ByteWriter w(spec.padded_size);
  // Long header: form bit (0x80) + fixed bit (0x40) + type Initial (00) +
  // reserved/pn-length bits zeroed.
  w.u8(0xc0);
  w.u32(spec.version);
  w.u8(static_cast<std::uint8_t>(spec.dcid.size()));
  w.raw(spec.dcid);
  w.u8(static_cast<std::uint8_t>(spec.scid.size()));
  w.raw(spec.scid);
  w.u8(0);  // token length (varint, zero)
  // Remaining bytes stand in for length/packet-number/encrypted payload.
  if (w.size() < spec.padded_size) w.fill(spec.filler, spec.padded_size - w.size());
  return std::move(w).take();
}

std::optional<LongHeader> parse_long_header(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    const std::uint8_t first = r.u8();
    if ((first & 0x80) == 0) return std::nullopt;  // short header
    LongHeader h;
    h.version = r.u32();
    const std::uint8_t dcid_len = r.u8();
    if (dcid_len > 20) return std::nullopt;
    auto dcid = r.raw(dcid_len);
    h.dcid.assign(dcid.begin(), dcid.end());
    const std::uint8_t scid_len = r.u8();
    if (scid_len > 20) return std::nullopt;
    auto scid = r.raw(scid_len);
    h.scid.assign(scid.begin(), scid.end());
    return h;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

bool tspu_quic_fingerprint(std::span<const std::uint8_t> udp_payload,
                           std::uint16_t dst_port) {
  // Figure 14: destined to UDP 443, >= 1001 payload bytes, and version bytes
  // 0x00 0x00 0x00 0x01 starting from the SECOND byte. Nothing else — the
  // first byte's value and everything after byte 4 are ignored.
  if (dst_port != kQuicPort) return false;
  if (udp_payload.size() < kMinFingerprintLen) return false;
  util::ByteReader r(udp_payload);
  r.skip(1);  // first byte ignored by the device
  return r.u32() == kVersion1;
}

std::string version_name(std::uint32_t version) {
  switch (version) {
    case kVersion1:
      return "QUICv1";
    case kVersionDraft29:
      return "draft-29";
    case kVersionQuicPing:
      return "quicping";
    default: {
      std::string out = "0x";
      for (int shift = 28; shift >= 0; shift -= 4) {
        out += "0123456789abcdef"[(version >> shift) & 0xf];
      }
      return out;
    }
  }
}

}  // namespace tspu::quic
