#include "netsim/network.h"

#include <algorithm>
#include <stdexcept>

#include "netsim/middlebox.h"

namespace tspu::netsim {

void RoutingTable::add(util::Ipv4Prefix prefix, NodeId next_hop) {
  // Keep entries sorted by (descending length, ascending base); insert after
  // equal keys so the earliest-added of two identical prefixes keeps winning.
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const util::Ipv4Prefix& p, const Entry& e) {
        if (p.length() != e.prefix.length()) return p.length() > e.prefix.length();
        return p.base() < e.prefix.base();
      });
  entries_.insert(pos, Entry{prefix, next_hop});
}

NodeId RoutingTable::lookup(util::Ipv4Addr dst) const {
  // One binary search per distinct prefix length, longest first. Prefixes of
  // one length are disjoint, so the only candidate is the entry whose base
  // equals dst masked to that length.
  const auto begin = entries_.begin();
  const auto end = entries_.end();
  for (auto group = begin; group != end;) {
    const int len = group->prefix.length();
    const auto group_end = std::partition_point(
        group, end,
        [len](const Entry& e) { return e.prefix.length() == len; });
    const util::Ipv4Addr masked = util::Ipv4Prefix(dst, len).base();
    const auto it = std::lower_bound(
        group, group_end, masked,
        [](const Entry& e, util::Ipv4Addr base) { return e.prefix.base() < base; });
    if (it != group_end && it->prefix.base() == masked) return it->next_hop;
    group = group_end;
  }
  return default_;
}

void RoutingTable::rewrite_next_hop(NodeId old_hop, NodeId new_hop) {
  for (Entry& e : entries_) {
    if (e.next_hop == old_hop) e.next_hop = new_hop;
  }
  if (default_ == old_hop) default_ = new_hop;
}

NodeId Network::add(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->id_ = id;
  node->net_ = this;
  if (!node->addr().is_zero()) {
    by_addr_[node->addr()] = id;
  }
  nodes_.push_back(std::move(node));
  tables_.emplace_back();
  return id;
}

void Network::link(NodeId a, NodeId b, util::Duration delay) {
  edges_[{a, b}] = delay;
  edges_[{b, a}] = delay;
}

NodeId Network::insert_inline(NodeId a, NodeId b,
                              std::unique_ptr<Middlebox> box) {
  const auto* edge = edges_.find({a, b});
  if (edge == nullptr)
    throw std::invalid_argument("insert_inline: nodes are not linked");
  const util::Duration delay = edge->second;
  edges_.erase({a, b});
  edges_.erase({b, a});

  Middlebox* raw = box.get();
  const NodeId m = add(std::move(box));
  raw->left_ = a;
  raw->right_ = b;
  // Audit the box's internal invariants after every simulator step in debug
  // builds. `raw` is owned by nodes_, which outlives the simulator queue.
  sim_.add_audit_hook([raw, this] { raw->audit_state(sim_.now()); });
  // The box adds no modeled latency of its own; split the original delay.
  link(a, m, delay / 2);
  link(m, b, delay - delay / 2);
  tables_[a].rewrite_next_hop(b, m);
  tables_[b].rewrite_next_hop(a, m);
  return m;
}

void Network::forward(NodeId from, wire::Packet pkt) {
  const NodeId next = tables_.at(from).lookup(pkt.ip.dst);
  if (next == kInvalidNode) return;  // no route: silently dropped
  transmit(from, next, std::move(pkt));
}

void Network::set_link_loss(NodeId a, NodeId b, double probability) {
  loss_[{a, b}] = probability;
  loss_[{b, a}] = probability;
}

void Network::transmit(NodeId from, NodeId to, wire::Packet pkt) {
  const auto* edge = edges_.find({from, to});
  if (edge == nullptr)
    throw std::logic_error("transmit over non-existent link " +
                           node(from).name() + " -> " + node(to).name());
  if (!loss_.empty()) {
    const auto* loss = loss_.find({from, to});
    if (loss != nullptr && loss_rng_.bernoulli(loss->second)) {
      return;  // transient loss: the packet simply vanishes
    }
  }
  ++packets_transmitted_;
  Node* dst = nodes_.at(to).get();
  sim_.schedule(edge->second, [dst, from, p = std::move(pkt)]() mutable {
    dst->receive(std::move(p), from);
  });
}

bool Network::linked(NodeId a, NodeId b) const {
  return edges_.count({a, b}) != 0;
}

NodeId Network::find_by_addr(util::Ipv4Addr addr) const {
  const auto* e = by_addr_.find(addr);
  return e == nullptr ? kInvalidNode : e->second;
}

util::Duration Network::delay_of(NodeId a, NodeId b) const {
  return edges_.at({a, b});
}

}  // namespace tspu::netsim
