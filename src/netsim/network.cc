#include "netsim/network.h"

#include <algorithm>
#include <stdexcept>

#include "netsim/middlebox.h"
#include "obs/obs.h"
#include "util/check.h"
#include "wire/ipv4.h"

namespace tspu::netsim {
namespace {

/// Flight-recorder line for one link event; packet bytes ride along as hex
/// so trace2txt can re-render them with pcap::describe. Callers guard with
/// obs::tracing() BEFORE calling: the hex serialization and the name
/// concatenation below must never run on the non-traced hot path.
void trace_link_event(const char* kind, const Network& net, NodeId from,
                      NodeId to, util::Instant now, const wire::Packet& pkt) {
  obs::trace_event(obs::Layer::kNetsim, kind, now, {},
                   net.node(from).name() + ">" + net.node(to).name(),
                   obs::hex_encode(wire::serialize(pkt)));
}

}  // namespace

void RoutingTable::add(util::Ipv4Prefix prefix, NodeId next_hop) {
  // Keep entries sorted by (descending length, ascending base); insert after
  // equal keys so the earliest-added of two identical prefixes keeps winning.
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const util::Ipv4Prefix& p, const Entry& e) {
        if (p.length() != e.prefix.length()) return p.length() > e.prefix.length();
        return p.base() < e.prefix.base();
      });
  entries_.insert(pos, Entry{prefix, next_hop});
}

NodeId RoutingTable::lookup(util::Ipv4Addr dst) const {
  // One binary search per distinct prefix length, longest first. Prefixes of
  // one length are disjoint, so the only candidate is the entry whose base
  // equals dst masked to that length.
  const auto begin = entries_.begin();
  const auto end = entries_.end();
  for (auto group = begin; group != end;) {
    const int len = group->prefix.length();
    const auto group_end = std::partition_point(
        group, end,
        [len](const Entry& e) { return e.prefix.length() == len; });
    const util::Ipv4Addr masked = util::Ipv4Prefix(dst, len).base();
    const auto it = std::lower_bound(
        group, group_end, masked,
        [](const Entry& e, util::Ipv4Addr base) { return e.prefix.base() < base; });
    if (it != group_end && it->prefix.base() == masked) return it->next_hop;
    group = group_end;
  }
  return default_;
}

void RoutingTable::rewrite_next_hop(NodeId old_hop, NodeId new_hop) {
  for (Entry& e : entries_) {
    if (e.next_hop == old_hop) e.next_hop = new_hop;
  }
  if (default_ == old_hop) default_ = new_hop;
}

NodeId Network::add(std::unique_ptr<Node> node) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  node->id_ = id;
  node->net_ = this;
  if (!node->addr().is_zero()) {
    by_addr_[node->addr()] = id;
  }
  nodes_.push_back(std::move(node));
  tables_.emplace_back();
  return id;
}

void Network::link(NodeId a, NodeId b, util::Duration delay) {
  edges_[{a, b}] = delay;
  edges_[{b, a}] = delay;
}

NodeId Network::insert_inline(NodeId a, NodeId b,
                              std::unique_ptr<Middlebox> box) {
  const auto* edge = edges_.find({a, b});
  if (edge == nullptr)
    throw std::invalid_argument("insert_inline: nodes are not linked");
  const util::Duration delay = edge->second;
  edges_.erase({a, b});
  edges_.erase({b, a});

  Middlebox* raw = box.get();
  const NodeId m = add(std::move(box));
  raw->left_ = a;
  raw->right_ = b;
  // Audit the box's internal invariants after every simulator step in debug
  // builds. `raw` is owned by nodes_, which outlives the simulator queue.
  sim_.add_audit_hook([raw, this] { raw->audit_state(sim_.now()); });
  // The box adds no modeled latency of its own; split the original delay.
  link(a, m, delay / 2);
  link(m, b, delay - delay / 2);
  tables_[a].rewrite_next_hop(b, m);
  tables_[b].rewrite_next_hop(a, m);
  return m;
}

void Network::forward(NodeId from, wire::Packet pkt) {
  const NodeId next = tables_.at(from).lookup(pkt.ip.dst);
  if (next == kInvalidNode) return;  // no route: silently dropped
  transmit(from, next, std::move(pkt));
}

void Network::set_link_loss(NodeId a, NodeId b, double probability) {
  loss_[{a, b}] = probability;
  loss_[{b, a}] = probability;
}

void Network::set_link_faults(NodeId a, NodeId b, LinkFaultPlan plan) {
  fault_plans_[{a, b}] = plan;
  fault_plans_[{b, a}] = std::move(plan);
}

void Network::set_default_link_faults(LinkFaultPlan plan) {
  default_fault_plan_ = std::move(plan);
  has_default_fault_plan_ = true;
}

void Network::clear_link_faults() {
  fault_plans_ = {};
  fault_states_ = {};
  default_fault_plan_ = {};
  has_default_fault_plan_ = false;
}

void Network::reseed_fault_rngs(std::uint64_t seed) {
  fault_seed_root_ = seed;
  fault_epoch_ = sim_.now();
  fault_states_ = {};
  fault_stats_ = {};
}

const LinkFaultPlan* Network::fault_plan(NodeId from, NodeId to) const {
  if (!fault_plans_.empty()) {
    const auto* e = fault_plans_.find({from, to});
    if (e != nullptr) return &e->second;
  }
  return has_default_fault_plan_ ? &default_fault_plan_ : nullptr;
}

Network::LinkFaultState& Network::fault_state(NodeId from, NodeId to) {
  auto* existing = fault_states_.find({from, to});
  if (existing != nullptr) return existing->second;
  LinkFaultState& st = fault_states_[{from, to}];
  st.rng.reseed(fault_stream_seed(fault_seed_root_, from, to));
  st.last_packet = sim_.now();  // a fresh state has no idle gap to relax
  return st;
}

bool Network::fault_link_down(NodeId from, NodeId to) const {
  const LinkFaultPlan* plan = fault_plan(from, to);
  if (plan == nullptr || plan->flaps.empty()) return false;
  return flap_down(plan->flaps, sim_.now() - fault_epoch_);
}

void Network::deliver(NodeId from, NodeId to, wire::Packet pkt,
                      util::Duration delay) {
  ++packets_transmitted_;
  TSPU_OBS_COUNT("netsim.transmitted");
  // Validate the destination at schedule time (nodes are never removed, so
  // the id stays valid through the flight) and let the typed queue carry the
  // packet as a POD slab entry — no closure, no heap.
  nodes_.at(to);
  sim_.schedule_packet(delay, from, to, std::move(pkt));
}

void Network::deliver_scheduled(NodeId from, NodeId to, wire::Packet pkt) {
  // A link that flapped down while the packet was in flight eats it at
  // the delivery instant — send-time checks alone would let a packet
  // "tunnel through" an outage that started after transmission.
  if (fault_link_down(from, to)) {
    ++fault_stats_.dropped_down;
    TSPU_OBS_COUNT("netsim.drop.link_down");
    if (obs::tracing())
      trace_link_event("drop.link_down", *this, from, to, sim_.now(), pkt);
    return;
  }
  TSPU_AUDIT(!fault_link_down(from, to),
             "downed link must never deliver a packet");
  TSPU_OBS_COUNT("netsim.delivered");
  if (obs::tracing())
    trace_link_event("deliver", *this, from, to, sim_.now(), pkt);
  nodes_[to]->receive(std::move(pkt), from);
}

void Network::transmit(NodeId from, NodeId to, wire::Packet pkt) {
  const auto* edge = edges_.find({from, to});
  if (edge == nullptr)
    throw std::logic_error("transmit over non-existent link " +
                           node(from).name() + " -> " + node(to).name());
  if (!loss_.empty()) {
    const auto* loss = loss_.find({from, to});
    if (loss != nullptr && loss_rng_.bernoulli(loss->second)) {
      TSPU_OBS_COUNT("netsim.drop.loss");
      if (obs::tracing())
        trace_link_event("drop.loss", *this, from, to, sim_.now(), pkt);
      return;  // transient loss: the packet simply vanishes
    }
  }
  const LinkFaultPlan* plan = fault_plan(from, to);
  if (plan == nullptr || !plan->any()) {
    deliver(from, to, std::move(pkt), edge->second);
    return;
  }

  const util::Duration since_epoch = sim_.now() - fault_epoch_;
  if (flap_down(plan->flaps, since_epoch)) {
    ++fault_stats_.dropped_down;
    TSPU_OBS_COUNT("netsim.drop.link_down");
    if (obs::tracing())
      trace_link_event("drop.link_down", *this, from, to, sim_.now(), pkt);
    return;  // sent into a dead link
  }

  LinkFaultState& st = fault_state(from, to);
  const bool time_clocked =
      plan->burst.enabled() && plan->burst.relax_steps_per_second > 0.0;
  if (time_clocked) {
    // Time-clocked chain: the state evolves with the elapsed gap (one
    // closed-form draw), so a retry backoff genuinely decorrelates
    // attempts instead of meeting the same frozen bad state, and the
    // per-packet draws below only SAMPLE it — a back-to-back fragment
    // train sees one outage state, not 45 fresh chances to enter one.
    st.chain.relax(plan->burst, sim_.now() - st.last_packet, st.rng);
    st.last_packet = sim_.now();
  }
  // Fixed draw order per packet — duplicate decision, then per-copy chain
  // step / iid loss / corruption / delay — keeps the stream consumption
  // identical no matter which faults fire.
  const int copies =
      plan->duplicate_prob > 0.0 && st.rng.bernoulli(plan->duplicate_prob)
          ? 2
          : 1;
  for (int c = 0; c < copies; ++c) {
    // Each copy is an independent packet on the wire: it advances the loss
    // chain and draws every fault on its own, so duplicated and reordered
    // paths see exactly the same loss model as clean ones.
    const bool burst_lost =
        plan->burst.enabled() &&
        (time_clocked ? st.chain.sample(plan->burst, st.rng)
                      : st.chain.step(plan->burst, st.rng));
    if (burst_lost) {
      ++fault_stats_.dropped_burst;
      TSPU_OBS_COUNT("netsim.drop.burst");
      if (obs::tracing())
        trace_link_event("drop.burst", *this, from, to, sim_.now(), pkt);
      continue;
    }
    if (plan->iid_loss > 0.0 && st.rng.bernoulli(plan->iid_loss)) {
      ++fault_stats_.dropped_iid;
      TSPU_OBS_COUNT("netsim.drop.iid");
      if (obs::tracing())
        trace_link_event("drop.iid", *this, from, to, sim_.now(), pkt);
      continue;
    }
    wire::Packet copy;
    if (c + 1 < copies) {
      copy = pkt;  // an earlier copy still needs the original
    } else {
      copy = std::move(pkt);
    }
    if (c > 0) {
      ++fault_stats_.duplicated;
      TSPU_OBS_COUNT("netsim.dup");
    }
    if (plan->corrupt_prob > 0.0 && !copy.payload.empty() &&
        st.rng.bernoulli(plan->corrupt_prob)) {
      copy.payload[st.rng.below(copy.payload.size())] ^= 0xff;
      ++fault_stats_.corrupted;
      TSPU_OBS_COUNT("netsim.corrupt");
    }
    util::Duration delay = edge->second;
    if (plan->reorder_prob > 0.0 && st.rng.bernoulli(plan->reorder_prob)) {
      delay = delay + plan->reorder_delay;
      ++fault_stats_.reordered;
      TSPU_OBS_COUNT("netsim.reorder");
    } else if (plan->jitter_max.as_micros() > 0) {
      delay = delay + util::Duration::micros(static_cast<std::int64_t>(
                          st.rng.below(static_cast<std::uint64_t>(
                              plan->jitter_max.as_micros()))));
    }
    deliver(from, to, std::move(copy), delay);
  }
}

bool Network::linked(NodeId a, NodeId b) const {
  return edges_.count({a, b}) != 0;
}

NodeId Network::find_by_addr(util::Ipv4Addr addr) const {
  const auto* e = by_addr_.find(addr);
  return e == nullptr ? kInvalidNode : e->second;
}

util::Duration Network::delay_of(NodeId a, NodeId b) const {
  return edges_.at({a, b});
}

}  // namespace tspu::netsim
