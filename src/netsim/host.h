// End hosts: packet capture, raw injection, and miniature TCP/UDP stacks.
//
// Measurement code in this project works the way the paper's does: craft
// packets, send them, and look at captures from both ends. Hosts therefore
// expose a raw interface (send_packet + captured()) alongside small scripted
// TCP server/client state machines used for realistic flows (handshakes,
// ClientHello exchanges, echo servers). Both stacks retransmit unacked data
// on a 1-second timer with a bounded attempt budget — necessary to observe
// throttling as a *rate* (the paper's ~650 B/s) rather than a stall, while
// hard drops still kill flows once the budget is spent.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netsim/node.h"
#include "util/bytes.h"
#include "util/inplace_function.h"
#include "util/flat_map.h"
#include "util/time.h"
#include "wire/fragment.h"
#include "wire/ipv4.h"
#include "wire/tcp.h"
#include "wire/udp.h"

namespace tspu::netsim {

struct CapturedPacket {
  util::Instant time;
  bool outbound = false;
  wire::Packet pkt;
};

/// Response generator for a TCP service: receives the application bytes of
/// one inbound segment, returns bytes to send back (empty = just ACK).
/// Inline-only storage (64 bytes): handlers are looked up per delivered
/// segment, so their state must be a few pointers, never a heap closure.
using TcpDataHandler =
    util::InplaceFunction<64, util::Bytes(std::span<const std::uint8_t>)>;

struct TcpServerOptions {
  std::uint16_t window = 65535;
  /// MSS option announced on the server's SYN/SYN-ACK (0 = omit). An MSS
  /// below the ClientHello size forces the client to split it — the MSS
  /// sibling of the small-window strategy (extension beyond the paper).
  std::uint16_t mss = 0;
  /// Server-side circumvention (§8): answer the client's SYN with a bare SYN
  /// (Split Handshake) instead of SYN/ACK.
  bool split_handshake = false;
  /// Max bytes per response segment (server-side TCP segmentation).
  std::size_t max_segment = 1460;
  /// Delay before sending the response bytes (the "wait out the TSPU
  /// SYN-SENT timeout" strategy from §8 sets this large).
  util::Duration response_delay{};
  TcpDataHandler on_data;  ///< nullptr = sink: ACK data, never respond
};

/// Echoes everything back — TCP port 7 servers used by Quack (§7.2).
TcpServerOptions echo_server_options();
/// Replies to any data with a ServerHello — the measurement machines' :443.
TcpServerOptions tls_server_options();

struct TcpClientOptions {
  std::uint16_t src_port = 40000;
  std::uint8_t ttl = 64;
  std::uint16_t window = 65535;
  std::size_t max_segment = 1460;
  /// MSS announced on our SYN (0 = omit the option).
  std::uint16_t mss = 1460;
  /// >0: IP-fragment outgoing data packets into payloads of this many bytes
  /// (client-side circumvention, §8).
  std::size_t ip_fragment_payload = 0;
};

class Host;

/// One active client connection. Owned by the Host; observe it after running
/// the simulation.
class TcpClient {
 public:
  enum class State { kClosed, kSynSent, kSynReceived, kEstablished, kReset };

  /// Queues bytes; sent immediately when established.
  void send(util::Bytes data);
  void close();  ///< sends FIN/ACK when established

  /// Injects a crafted segment into this connection with the current
  /// sequence numbers — the hybrid the paper's experiments use: a normal
  /// stack for the handshake, crafted packets (e.g. TTL-limited triggers)
  /// mid-flow. `advance_seq=false` leaves snd_nxt untouched so a subsequent
  /// normal send() overlaps this segment's sequence range (the receiver
  /// accepts whichever arrives; useful when the crafted packet is expected
  /// to die in transit).
  void send_segment(wire::TcpFlags flags, std::span<const std::uint8_t> payload,
                    std::uint8_t ttl, bool advance_seq = false);

  std::uint32_t snd_nxt() const { return snd_nxt_; }
  std::uint32_t rcv_nxt() const { return rcv_nxt_; }
  std::uint16_t src_port() const { return opts_.src_port; }

  State state() const { return state_; }
  bool established_once() const { return established_once_; }
  bool got_rst() const { return rst_count_ > 0; }
  int rst_count() const { return rst_count_; }
  /// In-order reassembled bytes from the peer.
  const util::Bytes& received() const { return received_; }
  /// Count of payload-bearing segments that carried NEW data (sequence
  /// ranges not seen before). Duplicates from retransmission don't count,
  /// so censors that stall a flow can't be mistaken for delivery.
  int data_segments_received() const { return data_segments_; }

 private:
  friend class Host;
  TcpClient(Host& host, util::Ipv4Addr dst, std::uint16_t dst_port,
            TcpClientOptions opts);
  void start();
  void handle(const wire::TcpSegment& seg);
  void transmit(wire::TcpFlags flags, std::span<const std::uint8_t> payload);
  void flush_pending();
  void queue_retx(std::uint32_t seq, util::Bytes payload);
  void arm_retx_timer();
  void on_retx_timer();

  /// One unacknowledged data segment awaiting ACK or retransmission.
  struct Unacked {
    std::uint32_t seq;
    util::Bytes payload;
    int attempts = 0;
  };

  Host& host_;
  util::Ipv4Addr dst_;
  std::uint16_t dst_port_;
  TcpClientOptions opts_;
  /// Peer's advertised receive window (from its SYN/SYN-ACK); outgoing
  /// segments never exceed it — the hook the brdgrd-style server-side
  /// small-window strategy relies on (§8).
  std::uint16_t peer_window_ = 65535;
  /// Peer's announced MSS (0 = none seen); outgoing segments honor it.
  std::uint16_t peer_mss_ = 0;
  State state_ = State::kClosed;
  bool established_once_ = false;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  int rst_count_ = 0;
  int data_segments_ = 0;
  std::uint32_t highest_data_seq_ = 0;  ///< dedup horizon for the counter
  bool any_data_seen_ = false;
  util::Bytes received_;
  std::vector<util::Bytes> pending_;
  std::vector<Unacked> unacked_;
  bool retx_armed_ = false;
};

class Host : public Node {
 public:
  Host(std::string name, util::Ipv4Addr addr);

  void receive(wire::Packet pkt, NodeId from) override;

  // ---- raw interface ----

  /// Routes a crafted packet into the network (recorded as outbound capture).
  void send_packet(wire::Packet pkt);

  /// Sends a crafted TCP segment from this host's address.
  void send_tcp(util::Ipv4Addr dst, const wire::TcpHeader& tcp,
                std::span<const std::uint8_t> payload = {},
                std::uint8_t ttl = 64);

  void send_udp(util::Ipv4Addr dst, std::uint16_t src_port,
                std::uint16_t dst_port, std::span<const std::uint8_t> payload,
                std::uint8_t ttl = 64);

  void send_ping(util::Ipv4Addr dst, std::uint16_t icmp_id,
                 std::uint16_t seq = 1, std::uint8_t ttl = 64);

  // ---- capture ----

  const std::vector<CapturedPacket>& captured() const { return captured_; }
  void clear_captured() { captured_.clear(); }
  /// Caps the capture buffer; national-scale endpoints set a small cap.
  void set_capture_limit(std::size_t n) { capture_limit_ = n; }

  // ---- servers ----

  void listen(std::uint16_t port, TcpServerOptions opts);
  void close_port(std::uint16_t port);
  bool listening_on(std::uint16_t port) const { return services_.count(port); }

  using UdpHandler = util::InplaceFunction<
      64, void(Host&, util::Ipv4Addr src, const wire::UdpDatagram&)>;
  void udp_listen(std::uint16_t port, UdpHandler handler);

  // ---- client ----

  TcpClient& connect(util::Ipv4Addr dst, std::uint16_t dst_port,
                     TcpClientOptions opts = {});

  /// Drops captures, finished client connections, and server flow state.
  /// Bulk testers (domain sweeps, reliability runs) call this between
  /// trials to keep memory flat; references returned by connect() become
  /// invalid.
  void reset_traffic_state();

  // ---- behavior knobs ----

  /// Whether this host answers ICMP echo requests (default true).
  bool respond_icmp_echo = true;
  /// Whether TCP to a closed port elicits RST/ACK (default true, like every
  /// mainstream OS).
  bool rst_on_closed_port = true;
  std::uint8_t default_ttl = 64;

  /// Inbound fragment reassembly config (default Linux-like: 64-fragment
  /// queue, ignore-duplicates, 30 s). Endpoint OS diversity in the national
  /// scan perturbs this.
  void set_reassembly(wire::ReassemblyConfig cfg);

  std::uint16_t next_ip_id() { return ip_id_++; }

  /// Rewinds the IP-ID and ISS counters to their construction values. The
  /// parallel runner calls this between work items so a probe's packet trace
  /// does not depend on how many probes ran before it on the same replica.
  void reset_protocol_counters() {
    ip_id_ = 1;
    next_iss_ = 1u << 20;
  }

  /// Checkpoint hooks: the protocol counter cursors as one value (IP-ID in
  /// the low 16 bits, ISS above), so a resumed host stamps the exact same
  /// IDs an uninterrupted one would.
  std::uint64_t protocol_counters() const {
    return static_cast<std::uint64_t>(next_iss_) << 16 | ip_id_;
  }
  void restore_protocol_counters(std::uint64_t packed) {
    ip_id_ = static_cast<std::uint16_t>(packed & 0xffff);
    next_iss_ = static_cast<std::uint32_t>(packed >> 16);
  }

 private:
  struct FlowKey {
    util::Ipv4Addr peer;
    std::uint16_t peer_port;
    std::uint16_t local_port;
    friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
  };

  enum class ServerFlowState { kSynReceived, kSynSentSplit, kEstablished };

  struct UnackedSegment {
    std::uint32_t seq;
    util::Bytes payload;
    int attempts = 0;
  };

  struct ServerFlow {
    ServerFlowState state = ServerFlowState::kSynReceived;
    std::uint32_t snd_nxt = 0;
    std::uint32_t rcv_nxt = 0;
    std::uint16_t peer_mss = 0;  ///< client's announced MSS
    std::vector<UnackedSegment> unacked;
    bool retx_armed = false;
  };

  void handle_tcp(const wire::Packet& pkt);
  void handle_udp(const wire::Packet& pkt);
  void handle_icmp(const wire::Packet& pkt);
  void server_transmit(const FlowKey& key, const ServerFlow& flow,
                       wire::TcpFlags flags,
                       std::span<const std::uint8_t> payload,
                       std::uint16_t window);
  void server_respond_data(std::uint16_t port, const FlowKey& key,
                           util::Bytes response);
  void arm_server_retx(std::uint16_t port, const FlowKey& key);
  void server_retx_tick(std::uint16_t port, const FlowKey& key);
  void record(const wire::Packet& pkt, bool outbound);

  std::vector<CapturedPacket> captured_;
  std::size_t capture_limit_ = 1 << 20;
  // Flat maps: handle_tcp touches clients_/services_/server_flows_ on every
  // delivered segment, which makes these the per-packet hot path.
  util::FlatMap<std::uint16_t, TcpServerOptions> services_;
  util::FlatMap<std::uint16_t, UdpHandler> udp_handlers_;
  util::FlatMap<FlowKey, ServerFlow> server_flows_;
  util::FlatMap<FlowKey, std::unique_ptr<TcpClient>> clients_;
  wire::Reassembler reassembler_;
  std::uint16_t ip_id_ = 1;
  std::uint32_t next_iss_ = 1u << 20;

  friend class TcpClient;
};

}  // namespace tspu::netsim
