#include "netsim/pcap.h"

#include <cstdio>

#include "quic/quic.h"
#include "tls/clienthello.h"
#include "wire/icmp.h"
#include "wire/tcp.h"
#include "wire/udp.h"

namespace tspu::netsim {
namespace {

std::string payload_note(std::span<const std::uint8_t> payload,
                         std::uint16_t dst_port) {
  if (payload.empty()) return "";
  if (auto sni = tls::extract_sni(payload)) {
    return " TLS ClientHello sni=" + *sni;
  }
  if (!payload.empty() && payload[0] == tls::kContentTypeHandshake &&
      payload.size() > 5 && payload[5] == tls::kHandshakeServerHello) {
    return " TLS ServerHello";
  }
  if (quic::tspu_quic_fingerprint(payload, dst_port)) {
    return " QUIC Initial (TSPU-fingerprint match)";
  }
  if (auto hdr = quic::parse_long_header(payload)) {
    return " QUIC long header " + quic::version_name(hdr->version);
  }
  return "";
}

}  // namespace

std::string describe(const wire::Packet& pkt) {
  char buf[256];
  if (pkt.ip.is_fragment()) {
    std::snprintf(buf, sizeof buf, "%s > %s FRAG id=%u off=%u%s len=%zu ttl=%u",
                  pkt.ip.src.str().c_str(), pkt.ip.dst.str().c_str(),
                  pkt.ip.id, pkt.ip.frag_offset,
                  pkt.ip.more_fragments ? "+" : "", pkt.payload.size(),
                  pkt.ip.ttl);
    return buf;
  }
  switch (pkt.ip.proto) {
    case wire::IpProto::kTcp: {
      auto seg = wire::parse_tcp(pkt, /*verify_checksum=*/false);
      if (!seg) break;
      std::snprintf(buf, sizeof buf,
                    "%s:%u > %s:%u TCP %s seq=%u ack=%u win=%u len=%zu ttl=%u",
                    pkt.ip.src.str().c_str(), seg->hdr.src_port,
                    pkt.ip.dst.str().c_str(), seg->hdr.dst_port,
                    seg->hdr.flags.str().c_str(), seg->hdr.seq, seg->hdr.ack,
                    seg->hdr.window, seg->payload.size(), pkt.ip.ttl);
      return buf + payload_note(seg->payload, seg->hdr.dst_port);
    }
    case wire::IpProto::kUdp: {
      auto d = wire::parse_udp(pkt, /*verify_checksum=*/false);
      if (!d) break;
      std::snprintf(buf, sizeof buf, "%s:%u > %s:%u UDP len=%zu ttl=%u",
                    pkt.ip.src.str().c_str(), d->hdr.src_port,
                    pkt.ip.dst.str().c_str(), d->hdr.dst_port,
                    d->payload.size(), pkt.ip.ttl);
      return buf + payload_note(d->payload, d->hdr.dst_port);
    }
    case wire::IpProto::kIcmp: {
      auto msg = wire::parse_icmp(pkt);
      if (!msg) break;
      const char* type = msg->type == wire::IcmpType::kEchoRequest   ? "echo-request"
                         : msg->type == wire::IcmpType::kEchoReply   ? "echo-reply"
                         : msg->type == wire::IcmpType::kTimeExceeded
                             ? "time-exceeded"
                             : "icmp";
      std::snprintf(buf, sizeof buf, "%s > %s ICMP %s ttl=%u",
                    pkt.ip.src.str().c_str(), pkt.ip.dst.str().c_str(), type,
                    pkt.ip.ttl);
      return buf;
    }
  }
  return wire::summary(pkt);  // fallback: the terse ipv4.h one-liner
}

std::string dump_capture(const std::vector<CapturedPacket>& capture) {
  std::string out;
  const util::Instant t0 =
      capture.empty() ? util::Instant{} : capture.front().time;
  for (const auto& cap : capture) {
    char head[48];
    std::snprintf(head, sizeof head, "%10.6f %s  ",
                  (cap.time - t0).as_seconds(), cap.outbound ? ">" : "<");
    out += head;
    out += describe(cap.pkt);
    out += '\n';
  }
  return out;
}

std::string hex_dump(std::span<const std::uint8_t> data) {
  std::string out;
  char buf[24];
  for (std::size_t row = 0; row < data.size(); row += 16) {
    std::snprintf(buf, sizeof buf, "%04zx  ", row);
    out += buf;
    for (std::size_t i = 0; i < 16; ++i) {
      if (row + i < data.size()) {
        std::snprintf(buf, sizeof buf, "%02x ", data[row + i]);
        out += buf;
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += ' ';
    for (std::size_t i = 0; i < 16 && row + i < data.size(); ++i) {
      const std::uint8_t c = data[row + i];
      out += (c >= 0x20 && c < 0x7f) ? static_cast<char>(c) : '.';
    }
    out += '\n';
  }
  return out;
}

}  // namespace tspu::netsim
