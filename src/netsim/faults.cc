#include "netsim/faults.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "netsim/host.h"
#include "netsim/network.h"
#include "util/check.h"
#include "wire/tcp.h"

namespace tspu::netsim {

double GilbertElliott::stationary_bad() const {
  const double denom = p_enter_bad + p_exit_bad;
  return denom <= 0.0 ? 0.0 : p_enter_bad / denom;
}

double GilbertElliott::mean_loss() const {
  const double bad = stationary_bad();
  return bad * loss_bad + (1.0 - bad) * loss_good;
}

double GilbertElliott::mean_burst_length() const {
  return p_exit_bad <= 0.0 ? 0.0 : 1.0 / p_exit_bad;
}

double GilbertElliott::p_bad_after(bool bad_now, double k) const {
  // Two-state chain: P_bad(k) = pi + r^k * (P_bad(0) - pi) where
  // r = 1 - p_enter - p_exit is the second eigenvalue. An oscillatory
  // chain (r < 0) has no meaningful fractional power; treat it as fully
  // mixed, which is also where it converges.
  const double pi = stationary_bad();
  const double r = std::clamp(1.0 - p_enter_bad - p_exit_bad, 0.0, 1.0);
  const double decay = k <= 0.0 ? 1.0 : std::pow(r, k);
  return std::clamp(pi + decay * ((bad_now ? 1.0 : 0.0) - pi), 0.0, 1.0);
}

GilbertElliott GilbertElliott::bursty(double target_mean_loss,
                                      double mean_burst_packets) {
  if (target_mean_loss < 0.0 || target_mean_loss >= 1.0)
    throw std::invalid_argument("GilbertElliott::bursty: loss must be [0,1)");
  if (mean_burst_packets < 1.0)
    throw std::invalid_argument("GilbertElliott::bursty: burst must be >= 1");
  GilbertElliott ge;
  ge.loss_good = 0.0;
  ge.loss_bad = 1.0;
  ge.p_exit_bad = 1.0 / mean_burst_packets;
  // stationary_bad == target_mean_loss  =>  p_enter = p_exit * m / (1 - m).
  ge.p_enter_bad =
      ge.p_exit_bad * target_mean_loss / (1.0 - target_mean_loss);
  return ge;
}

bool GilbertElliottState::step(const GilbertElliott& params, util::Rng& rng) {
  // Transition first, then draw the loss from the state the packet sees:
  // a freshly-entered bad state loses its very first packet, which is what
  // makes the burst length exactly geometric with mean 1/p_exit_bad.
  if (bad) {
    if (rng.bernoulli(params.p_exit_bad)) bad = false;
  } else {
    if (rng.bernoulli(params.p_enter_bad)) bad = true;
  }
  return rng.bernoulli(bad ? params.loss_bad : params.loss_good);
}

bool GilbertElliottState::sample(const GilbertElliott& params,
                                 util::Rng& rng) {
  return rng.bernoulli(bad ? params.loss_bad : params.loss_good);
}

void GilbertElliottState::relax(const GilbertElliott& params,
                                util::Duration idle, util::Rng& rng) {
  if (params.relax_steps_per_second <= 0.0 || idle.as_micros() <= 0) return;
  const double k = idle.as_seconds() * params.relax_steps_per_second;
  // One draw regardless of gap length keeps the per-link stream's
  // consumption deterministic in the event timeline alone.
  bad = rng.bernoulli(params.p_bad_after(bad, k));
}

bool flap_down(const std::vector<FlapWindow>& flaps,
               util::Duration since_epoch) {
  for (const FlapWindow& w : flaps) {
    if (since_epoch >= w.down_at && since_epoch < w.up_at) return true;
  }
  return false;
}

bool LinkFaultPlan::any() const {
  return iid_loss > 0.0 || burst.enabled() || duplicate_prob > 0.0 ||
         reorder_prob > 0.0 || corrupt_prob > 0.0 ||
         jitter_max.as_micros() > 0 || !flaps.empty();
}

std::uint64_t fault_stream_seed(std::uint64_t root, std::uint32_t from,
                                std::uint32_t to) {
  // splitmix64 over (root, directed edge), matching the runner's item-seed
  // construction: stateless, so creation order never matters.
  std::uint64_t x = root ^ (0x9e3779b97f4a7c15ull +
                            (static_cast<std::uint64_t>(from) << 32 | to));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

const char* flood_kind_name(FloodKind k) {
  switch (k) {
    case FloodKind::kSynFlood: return "syn-flood";
    case FloodKind::kFragmentFlood: return "fragment-flood";
    case FloodKind::kHalfOpenChurn: return "half-open-churn";
  }
  return "?";
}

FloodDriver::FloodDriver(Host& source, std::vector<FloodCampaign> campaigns)
    : source_(source), campaigns_(std::move(campaigns)) {
  for (const FloodCampaign& c : campaigns_) {
    if (!c.active()) continue;
    TSPU_CHECK(!c.targets.empty(),
               "flood campaign needs at least one target (topology code "
               "fills a default before constructing the driver)");
    TSPU_CHECK(c.spoof_count > 0, "flood campaign needs a spoof pool");
  }
  end_at_.resize(campaigns_.size());
}

void FloodDriver::arm(std::uint64_t seed) {
  // Bump first: callbacks from the previous arm() see a stale generation and
  // return before drawing from rng_, so the reseeded stream below belongs
  // entirely to this trial.
  ++generation_;
  rng_.reseed(seed);
  Simulator& sim = source_.net().sim();
  for (std::size_t i = 0; i < campaigns_.size(); ++i) {
    const FloodCampaign& c = campaigns_[i];
    if (!c.active()) continue;
    end_at_[i] = sim.now() + c.start + c.duration;
    const std::uint64_t gen = generation_;
    const std::size_t idx = i;
    sim.schedule(c.start, [this, idx, gen] { fire(idx, gen); });
  }
}

void FloodDriver::fire(std::size_t idx, std::uint64_t generation) {
  if (generation != generation_) return;  // orphaned by a later arm()
  const FloodCampaign& c = campaigns_[idx];
  for (int i = 0; i < c.packets_per_burst; ++i) send_one(c);
  Simulator& sim = source_.net().sim();
  if (sim.now() + c.burst_interval < end_at_[idx]) {
    const std::uint64_t gen = generation;
    sim.schedule(c.burst_interval, [this, idx, gen] { fire(idx, gen); });
  }
}

void FloodDriver::send_one(const FloodCampaign& c) {
  const util::Ipv4Addr src(c.spoof_base.value() +
                           static_cast<std::uint32_t>(rng_.next() %
                                                      c.spoof_count));
  const util::Ipv4Addr dst = c.targets[rng_.next() % c.targets.size()];
  wire::Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.id = static_cast<std::uint16_t>(rng_.next());
  switch (c.kind) {
    case FloodKind::kSynFlood: {
      ip.proto = wire::IpProto::kTcp;
      wire::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(1024 + rng_.next() % 60000);
      tcp.dst_port = c.target_port;
      tcp.seq = static_cast<std::uint32_t>(rng_.next());
      tcp.flags = wire::kSyn;
      tcp.mss = 1460;
      source_.send_packet(wire::make_tcp_packet(ip, tcp));
      break;
    }
    case FloodKind::kHalfOpenChurn: {
      // A bare ACK as the first packet of an unseen flow parks a long-lived
      // non-SYN conntrack entry (420/480 s) — the slow-burn exhaustion that
      // outlives any SYN-flood timeout.
      ip.proto = wire::IpProto::kTcp;
      wire::TcpHeader tcp;
      tcp.src_port = static_cast<std::uint16_t>(1024 + rng_.next() % 60000);
      tcp.dst_port = c.target_port;
      tcp.seq = static_cast<std::uint32_t>(rng_.next());
      tcp.ack = static_cast<std::uint32_t>(rng_.next());
      tcp.flags = wire::kAck;
      source_.send_packet(wire::make_tcp_packet(ip, tcp));
      break;
    }
    case FloodKind::kFragmentFlood: {
      // Offset-0 fragment with MF set and no follow-up: the queue can never
      // complete and sits in the fragment engine until the 5 s age discard.
      ip.proto = wire::IpProto::kUdp;
      ip.more_fragments = true;
      ip.frag_offset = 0;
      wire::Packet pkt;
      pkt.ip = ip;
      const std::size_t len =
          std::max<std::size_t>(8, c.fragment_payload & ~std::size_t{7});
      pkt.payload.assign(len, 0xfd);
      source_.send_packet(std::move(pkt));
      break;
    }
  }
  ++packets_sent_;
}

}  // namespace tspu::netsim
