// IP router: decrements TTL, answers traceroute probes with ICMP
// time-exceeded, forwards by longest-prefix match.
#pragma once

#include "netsim/node.h"

namespace tspu::netsim {

class Router : public Node {
 public:
  Router(std::string name, util::Ipv4Addr addr)
      : Node(std::move(name), addr) {}

  void receive(wire::Packet pkt, NodeId from) override;
};

}  // namespace tspu::netsim
