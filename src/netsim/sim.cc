#include "netsim/sim.h"

#include "obs/obs.h"
#include "util/check.h"

namespace tspu::netsim {

void Simulator::schedule(util::Duration delay, std::function<void()> fn) {
  TSPU_DCHECK(delay >= util::Duration::micros(0),
              "events cannot be scheduled in the past");
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

void Simulator::run_audit_hooks() const {
  if constexpr (util::kAuditEnabled) {
    if (audit_hooks_.empty()) return;
    // One hook per event, round-robin: with H devices each is audited every
    // H events, which keeps Debug wall-time linear in events while still
    // sweeping all middlebox state continually.
    audit_hooks_[next_audit_hook_ % audit_hooks_.size()]();
    ++next_audit_hook_;
  }
}

std::size_t Simulator::run_until_idle() {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    TSPU_DCHECK(ev.at >= now_, "event timestamps must be monotone");
    now_ = ev.at;
    ev.fn();
    run_audit_hooks();
    ++processed;
  }
  TSPU_OBS_COUNT_N("netsim.sim_events", processed);
  return processed;
}

void Simulator::run_for(util::Duration d) {
  const util::Instant deadline = now_ + d;
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    TSPU_DCHECK(ev.at >= now_, "event timestamps must be monotone");
    now_ = ev.at;
    ev.fn();
    run_audit_hooks();
    ++processed;
  }
  TSPU_OBS_COUNT_N("netsim.sim_events", processed);
  now_ = deadline;
}

}  // namespace tspu::netsim
