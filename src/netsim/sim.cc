#include "netsim/sim.h"

namespace tspu::netsim {

void Simulator::schedule(util::Duration delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run_until_idle() {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    ++processed;
  }
  return processed;
}

void Simulator::run_for(util::Duration d) {
  const util::Instant deadline = now_ + d;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
  }
  now_ = deadline;
}

}  // namespace tspu::netsim
