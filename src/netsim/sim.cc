#include "netsim/sim.h"

#include "obs/obs.h"
#include "util/check.h"

namespace tspu::netsim {

void Simulator::schedule(util::Duration delay, Callback fn) {
  TSPU_DCHECK(delay >= util::Duration::micros(0),
              "events cannot be scheduled in the past");
  std::uint32_t slot;
  if (!callback_free_.empty()) {
    slot = callback_free_.back();
    callback_free_.pop_back();
    callback_slab_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(callback_slab_.size());
    callback_slab_.push_back(std::move(fn));
  }
  queue_.push(HeapEntry{now_ + delay, next_seq_++, slot, EventKind::kCallback});
}

void Simulator::schedule_packet(util::Duration delay, NodeId from, NodeId to,
                                wire::Packet pkt) {
  TSPU_DCHECK(delay >= util::Duration::micros(0),
              "events cannot be scheduled in the past");
  TSPU_DCHECK(sink_ != nullptr, "schedule_packet requires a PacketSink");
  std::uint32_t slot;
  if (!packet_free_.empty()) {
    slot = packet_free_.back();
    packet_free_.pop_back();
    PacketEvent& ev = packet_slab_[slot];
    ev.from = from;
    ev.to = to;
    // Move-assigning into the recycled slot lets the slot's previous payload
    // buffer return to the pool and the new payload move in — no copy.
    ev.pkt = std::move(pkt);
  } else {
    slot = static_cast<std::uint32_t>(packet_slab_.size());
    packet_slab_.push_back(PacketEvent{from, to, std::move(pkt)});
  }
  queue_.push(HeapEntry{now_ + delay, next_seq_++, slot, EventKind::kPacket});
}

void Simulator::run_audit_hooks() const {
  if constexpr (util::kAuditEnabled) {
    if (audit_hooks_.empty()) return;
    // One hook per event, round-robin: with H devices each is audited every
    // H events, which keeps Debug wall-time linear in events while still
    // sweeping all middlebox state continually.
    audit_hooks_[next_audit_hook_ % audit_hooks_.size()]();
    ++next_audit_hook_;
  }
}

void Simulator::dispatch(const HeapEntry& entry) {
  // Free the slot BEFORE invoking: re-entrant schedules (deliver -> receive
  // -> transmit -> schedule_packet) immediately reuse it, which is what
  // pins the slab at its warm-up high-water mark.
  if (entry.kind == EventKind::kPacket) {
    PacketEvent& slot = packet_slab_[entry.slot];
    const NodeId from = slot.from;
    const NodeId to = slot.to;
    wire::Packet pkt = std::move(slot.pkt);
    packet_free_.push_back(entry.slot);
    sink_->deliver_scheduled(from, to, std::move(pkt));
  } else {
    Callback fn = std::move(callback_slab_[entry.slot]);
    callback_free_.push_back(entry.slot);
    fn();
  }
}

std::size_t Simulator::run_until_idle() {
  std::size_t processed = 0;
  while (!queue_.empty()) {
    const HeapEntry ev = queue_.top();
    queue_.pop();
    TSPU_DCHECK(ev.at >= now_, "event timestamps must be monotone");
    now_ = ev.at;
    dispatch(ev);
    run_audit_hooks();
    ++processed;
  }
  TSPU_OBS_COUNT_N("netsim.sim_events", processed);
  return processed;
}

void Simulator::run_for(util::Duration d) {
  const util::Instant deadline = now_ + d;
  std::size_t processed = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    const HeapEntry ev = queue_.top();
    queue_.pop();
    TSPU_DCHECK(ev.at >= now_, "event timestamps must be monotone");
    now_ = ev.at;
    dispatch(ev);
    run_audit_hooks();
    ++processed;
  }
  TSPU_OBS_COUNT_N("netsim.sim_events", processed);
  now_ = deadline;
}

}  // namespace tspu::netsim
