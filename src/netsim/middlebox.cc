#include "netsim/middlebox.h"

#include <stdexcept>

#include "netsim/network.h"

namespace tspu::netsim {

void Middlebox::receive(wire::Packet pkt, NodeId from) {
  if (from == left_) {
    process(std::move(pkt), Direction::kLeftToRight);
  } else if (from == right_) {
    process(std::move(pkt), Direction::kRightToLeft);
  } else {
    throw std::logic_error("middlebox '" + name() +
                           "' received packet from non-neighbor");
  }
}

void Middlebox::forward_on(wire::Packet pkt, Direction dir) {
  const NodeId to = dir == Direction::kLeftToRight ? right_ : left_;
  net().transmit(id(), to, std::move(pkt));
}

void Middlebox::inject(wire::Packet pkt, Direction toward) {
  const NodeId to = toward == Direction::kLeftToRight ? right_ : left_;
  net().transmit(id(), to, std::move(pkt));
}

}  // namespace tspu::netsim
