// Transparent in-path middlebox: a bump-in-the-wire with two interfaces.
//
// Middleboxes do not decrement TTL and never appear in traceroutes — exactly
// the invisibility that forces the paper's TTL/fragmentation localization
// tricks. tspu::Device and the ispdpi negative controls derive from this.
#pragma once

#include <string>

#include "netsim/node.h"
#include "util/time.h"
#include "wire/ipv4.h"

namespace tspu::netsim {

/// Direction of travel through the box relative to its inline placement.
/// insert_inline(a, b, box) makes `a` the LEFT neighbor; by convention the
/// topology builder always places the subscriber ("inside"/RU-user) side on
/// the left, so kLeftToRight is upstream (client -> world).
enum class Direction {
  kLeftToRight,  ///< upstream: from the inside/user-facing side
  kRightToLeft,  ///< downstream: toward the inside/user-facing side
};

inline Direction reverse(Direction d) {
  return d == Direction::kLeftToRight ? Direction::kRightToLeft
                                      : Direction::kLeftToRight;
}

class Middlebox : public Node {
 public:
  explicit Middlebox(std::string name) : Node(std::move(name), util::Ipv4Addr()) {}

  /// Packet-processing hook. Implementations either call forward_on() /
  /// inject() or drop the packet by doing nothing.
  virtual void process(wire::Packet pkt, Direction dir) = 0;

  /// Invariant sweep over internal state, run after every simulator event in
  /// debug builds (the Network registers it with Simulator::add_audit_hook
  /// at insert_inline time). Implementations use TSPU_AUDIT and must not
  /// mutate observable state.
  virtual void audit_state(util::Instant /*now*/) const {}

  void receive(wire::Packet pkt, NodeId from) final;

  NodeId left() const { return left_; }
  NodeId right() const { return right_; }

 protected:
  /// Continues the packet along its current direction of travel.
  void forward_on(wire::Packet pkt, Direction dir);

  /// Emits a (possibly new) packet toward the given side.
  void inject(wire::Packet pkt, Direction toward);

 private:
  friend class Network;
  NodeId left_ = kInvalidNode;
  NodeId right_ = kInvalidNode;
};

}  // namespace tspu::netsim
