// Human-readable packet and capture dumps — the project's "tcpdump".
//
// Measurement debugging in the paper is pcap-driven; these helpers render
// captures the same way: one line per packet with protocol-aware decoding
// (TCP flags/seq/ack, UDP ports, ICMP type, TLS/QUIC payload sniffing), plus
// a classic offset/hex/ASCII dump for byte-level work.
#pragma once

#include <string>
#include <vector>

#include "netsim/host.h"
#include "wire/ipv4.h"

namespace tspu::netsim {

/// One-line protocol-aware description, e.g.
/// "5.16.0.100:40001 > 198.41.0.10:443 TCP PA seq=100 ack=7 len=87 ttl=62
///  TLS ClientHello sni=facebook.com".
std::string describe(const wire::Packet& pkt);

/// Renders a host's capture, tcpdump-style: one packet per line with a
/// relative timestamp and direction marker.
std::string dump_capture(const std::vector<CapturedPacket>& capture);

/// Classic hex dump: "0000  16 03 01 ..  ........".
std::string hex_dump(std::span<const std::uint8_t> data);

}  // namespace tspu::netsim
