// Discrete-event simulator with a virtual clock.
//
// Everything in the testbed — link delays, TSPU conntrack timeouts, the
// paper's "SLEEP then send trigger" experiments — runs on this clock, so a
// 480-second timeout estimation finishes in microseconds of wall time and is
// bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace tspu::netsim {

class Simulator {
 public:
  util::Instant now() const { return now_; }

  /// Schedules `fn` to run at now() + delay. Events at the same instant run
  /// in scheduling order (stable FIFO).
  void schedule(util::Duration delay, std::function<void()> fn);

  /// Runs events until the queue drains. Returns the number processed.
  std::size_t run_until_idle();

  /// Runs events with timestamps <= now() + d, then advances the clock to
  /// exactly now() + d (even if idle earlier). This is the simulated "sleep".
  void run_for(util::Duration d);

  std::size_t pending() const { return queue_.size(); }

  /// Registers an invariant sweep for debug builds (util::kAuditEnabled);
  /// release builds never call hooks. Network registers one per inline
  /// middlebox. After every processed event ONE hook runs (deterministic
  /// round-robin), and each middlebox's sweep itself audits a bounded
  /// rotating slice of its state — keeping per-event cost O(1) amortized
  /// while every device and every table entry is audited continually.
  void add_audit_hook(std::function<void()> hook) {
    audit_hooks_.push_back(std::move(hook));
  }

 private:
  void run_audit_hooks() const;
  struct Event {
    util::Instant at;
    std::uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  util::Instant now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::vector<std::function<void()>> audit_hooks_;
  /// Round-robin index into audit_hooks_ (mutable: auditing observes state,
  /// never mutates simulation-visible state).
  mutable std::size_t next_audit_hook_ = 0;
};

}  // namespace tspu::netsim
