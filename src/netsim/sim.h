// Discrete-event simulator with a virtual clock.
//
// Everything in the testbed — link delays, TSPU conntrack timeouts, the
// paper's "SLEEP then send trigger" experiments — runs on this clock, so a
// 480-second timeout estimation finishes in microseconds of wall time and is
// bit-reproducible.
//
// The queue is typed for the hot path: packet deliveries (the overwhelming
// majority of events) are small POD records dispatched straight to the
// registered PacketSink, and the remaining generic callbacks (timeouts,
// trial quiesce, audit bookkeeping) live in fixed-capacity InplaceFunctions.
// The binary heap itself orders 24-byte entries that index into slab
// storage with free lists, so a warm steady state schedules and dispatches
// events without any heap allocation.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "netsim/node.h"
#include "util/inplace_function.h"
#include "util/time.h"
#include "wire/ipv4.h"

namespace tspu::netsim {

/// Receiver for scheduled packet deliveries. Network implements this; the
/// indirection keeps Simulator ignorant of links and flap windows while the
/// heap stays free of per-packet closures.
class PacketSink {
 public:
  virtual void deliver_scheduled(NodeId from, NodeId to, wire::Packet pkt) = 0;

 protected:
  ~PacketSink() = default;
};

class Simulator {
 public:
  /// Generic callbacks must fit 64 inline bytes — a this-pointer plus a few
  /// keys. Oversized captures are a compile error, not a hidden allocation.
  using Callback = util::InplaceFunction<64, void()>;

  util::Instant now() const { return now_; }

  /// Schedules `fn` to run at now() + delay. Events at the same instant run
  /// in scheduling order (stable FIFO) regardless of their kind — packet
  /// and callback events share one sequence counter.
  void schedule(util::Duration delay, Callback fn);

  /// Schedules delivery of `pkt` on the from->to link at now() + delay via
  /// the registered PacketSink — the allocation-free fast path for the
  /// per-hop event that dominates every bench run.
  void schedule_packet(util::Duration delay, NodeId from, NodeId to,
                       wire::Packet pkt);

  /// Registers the receiver for schedule_packet events. Exactly one sink
  /// (the owning Network) is expected; set before any packet is scheduled.
  void set_packet_sink(PacketSink* sink) { sink_ = sink; }

  /// Runs events until the queue drains. Returns the number processed.
  std::size_t run_until_idle();

  /// Runs events with timestamps <= now() + d, then advances the clock to
  /// exactly now() + d (even if idle earlier). This is the simulated "sleep".
  void run_for(util::Duration d);

  std::size_t pending() const { return queue_.size(); }

  /// Registers an invariant sweep for debug builds (util::kAuditEnabled);
  /// release builds never call hooks. Network registers one per inline
  /// middlebox. After every processed event ONE hook runs (deterministic
  /// round-robin), and each middlebox's sweep itself audits a bounded
  /// rotating slice of its state — keeping per-event cost O(1) amortized
  /// while every device and every table entry is audited continually.
  void add_audit_hook(Callback hook) {
    audit_hooks_.push_back(std::move(hook));
  }

 private:
  enum class EventKind : std::uint8_t { kCallback, kPacket };

  /// What the binary heap actually moves: timestamp, FIFO tiebreak, and a
  /// slab slot. Payloads (closures, packets) stay put in their slabs.
  struct HeapEntry {
    util::Instant at;
    std::uint64_t seq;
    std::uint32_t slot;
    EventKind kind;
    bool operator>(const HeapEntry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  struct PacketEvent {
    NodeId from;
    NodeId to;
    wire::Packet pkt;
  };

  void run_audit_hooks() const;
  void dispatch(const HeapEntry& entry);

  util::Instant now_;
  std::uint64_t next_seq_ = 0;
  PacketSink* sink_ = nullptr;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
      queue_;
  // Slab storage + free lists. Slots are recycled before dispatch so a
  // re-entrant schedule (deliver -> receive -> transmit) reuses the slot it
  // was dispatched from; capacity reaches a high-water mark during warm-up
  // and steady state never grows either vector.
  std::vector<PacketEvent> packet_slab_;
  std::vector<std::uint32_t> packet_free_;
  std::vector<Callback> callback_slab_;
  std::vector<std::uint32_t> callback_free_;
  std::vector<Callback> audit_hooks_;
  /// Round-robin index into audit_hooks_ (mutable: auditing observes state,
  /// never mutates simulation-visible state).
  mutable std::size_t next_audit_hook_ = 0;
};

}  // namespace tspu::netsim
