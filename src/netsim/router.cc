#include "netsim/router.h"

#include "netsim/network.h"
#include "wire/icmp.h"

namespace tspu::netsim {

void Router::receive(wire::Packet pkt, NodeId /*from*/) {
  if (pkt.ip.dst == addr()) {
    // Routers answer pings to their own interface address; everything else
    // addressed to them is dropped.
    if (pkt.ip.proto == wire::IpProto::kIcmp) {
      if (auto msg = wire::parse_icmp(pkt);
          msg && msg->type == wire::IcmpType::kEchoRequest) {
        wire::IcmpMessage reply = *msg;
        reply.type = wire::IcmpType::kEchoReply;
        wire::Ipv4Header ip;
        ip.src = addr();
        ip.dst = pkt.ip.src;
        net().forward(id(), wire::make_icmp_packet(ip, reply));
      }
    }
    return;
  }

  if (pkt.ip.ttl <= 1) {
    // TTL expired in transit: emit time-exceeded toward the source. This is
    // the signal both classic traceroute and the paper's TTL-limited trigger
    // localization rely on.
    net().forward(id(), wire::make_time_exceeded(addr(), pkt));
    return;
  }
  pkt.ip.ttl -= 1;
  net().forward(id(), std::move(pkt));
}

}  // namespace tspu::netsim
