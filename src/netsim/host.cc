#include "netsim/host.h"

#include <algorithm>

#include "netsim/network.h"
#include "tls/clienthello.h"
#include "wire/icmp.h"

namespace tspu::netsim {

TcpServerOptions echo_server_options() {
  TcpServerOptions opts;
  opts.on_data = [](std::span<const std::uint8_t> data) {
    return util::Bytes(data.begin(), data.end());
  };
  return opts;
}

TcpServerOptions tls_server_options() {
  TcpServerOptions opts;
  opts.on_data = [](std::span<const std::uint8_t>) {
    return tls::build_server_hello();
  };
  return opts;
}

// ---------------------------------------------------------------- TcpClient

TcpClient::TcpClient(Host& host, util::Ipv4Addr dst, std::uint16_t dst_port,
                     TcpClientOptions opts)
    : host_(host), dst_(dst), dst_port_(dst_port), opts_(opts) {}

void TcpClient::start() {
  snd_nxt_ = host_.next_iss_;
  host_.next_iss_ += 64 * 1024;
  state_ = State::kSynSent;
  transmit(wire::kSyn, {});
  snd_nxt_ += 1;  // SYN consumes one sequence number
}

void TcpClient::transmit(wire::TcpFlags flags,
                         std::span<const std::uint8_t> payload) {
  wire::TcpHeader tcp;
  tcp.src_port = opts_.src_port;
  tcp.dst_port = dst_port_;
  tcp.seq = snd_nxt_;
  tcp.ack = flags.ack() ? rcv_nxt_ : 0;
  tcp.flags = flags;
  tcp.window = opts_.window;
  if (flags.syn()) tcp.mss = opts_.mss;

  wire::Ipv4Header ip;
  ip.src = host_.addr();
  ip.dst = dst_;
  ip.ttl = opts_.ttl;
  ip.id = host_.next_ip_id();
  wire::Packet pkt = wire::make_tcp_packet(ip, tcp, payload);

  if (opts_.ip_fragment_payload > 0 &&
      pkt.payload.size() > opts_.ip_fragment_payload) {
    for (wire::Packet& frag : wire::fragment(pkt, opts_.ip_fragment_payload)) {
      host_.send_packet(std::move(frag));
    }
  } else {
    host_.send_packet(std::move(pkt));
  }
}

void TcpClient::send(util::Bytes data) {
  pending_.push_back(std::move(data));
  if (state_ == State::kEstablished) flush_pending();
}

void TcpClient::flush_pending() {
  std::size_t limit = std::min<std::size_t>(
      opts_.max_segment, peer_window_ == 0 ? 1 : peer_window_);
  if (peer_mss_ != 0) limit = std::min<std::size_t>(limit, peer_mss_);
  for (util::Bytes& data : pending_) {
    std::size_t offset = 0;
    while (offset < data.size()) {
      const std::size_t n = std::min(limit, data.size() - offset);
      auto chunk = std::span(data).subspan(offset, n);
      transmit(wire::kPshAck, chunk);
      queue_retx(snd_nxt_, util::Bytes(chunk.begin(), chunk.end()));
      snd_nxt_ += static_cast<std::uint32_t>(n);
      offset += n;
    }
  }
  pending_.clear();
}

void TcpClient::queue_retx(std::uint32_t seq, util::Bytes payload) {
  unacked_.push_back({seq, std::move(payload), 0});
  arm_retx_timer();
}

void TcpClient::arm_retx_timer() {
  if (retx_armed_) return;
  retx_armed_ = true;
  Host* h = &host_;
  const Host::FlowKey key{dst_, dst_port_, opts_.src_port};
  h->net().sim().schedule(util::Duration::seconds(1), [h, key] {
    if (auto* client = h->clients_.find(key)) client->second->on_retx_timer();
  });
}

void TcpClient::on_retx_timer() {
  retx_armed_ = false;
  if (state_ != State::kEstablished) {
    unacked_.clear();
    return;
  }
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    if (++it->attempts > 8) {
      it = unacked_.erase(it);  // give up on this segment
      continue;
    }
    // Retransmit at the original sequence number.
    wire::TcpHeader tcp;
    tcp.src_port = opts_.src_port;
    tcp.dst_port = dst_port_;
    tcp.seq = it->seq;
    tcp.ack = rcv_nxt_;
    tcp.flags = wire::kPshAck;
    tcp.window = opts_.window;
    wire::Ipv4Header ip;
    ip.src = host_.addr();
    ip.dst = dst_;
    ip.ttl = opts_.ttl;
    ip.id = host_.next_ip_id();
    host_.send_packet(wire::make_tcp_packet(ip, tcp, it->payload));
    ++it;
  }
  if (!unacked_.empty()) arm_retx_timer();
}

void TcpClient::send_segment(wire::TcpFlags flags,
                             std::span<const std::uint8_t> payload,
                             std::uint8_t ttl, bool advance_seq) {
  const std::uint8_t saved_ttl = opts_.ttl;
  opts_.ttl = ttl;
  transmit(flags, payload);
  opts_.ttl = saved_ttl;
  if (advance_seq) {
    snd_nxt_ += static_cast<std::uint32_t>(payload.size()) +
                (flags.syn() || flags.fin() ? 1 : 0);
  }
}

void TcpClient::close() {
  if (state_ != State::kEstablished) return;
  transmit(wire::kFinAck, {});
  snd_nxt_ += 1;
}

void TcpClient::handle(const wire::TcpSegment& seg) {
  const wire::TcpFlags f = seg.hdr.flags;
  if (f.rst()) {
    ++rst_count_;
    state_ = State::kReset;
    return;
  }
  switch (state_) {
    case State::kSynSent:
      if (f.is_syn_ack() && seg.hdr.ack == snd_nxt_) {
        rcv_nxt_ = seg.hdr.seq + 1;
        peer_window_ = seg.hdr.window;
        if (seg.hdr.mss != 0) peer_mss_ = seg.hdr.mss;
        state_ = State::kEstablished;
        established_once_ = true;
        transmit(wire::kAck, {});
        flush_pending();
      } else if (f.is_syn_only()) {
        // Split handshake / simultaneous open: an unmodified client answers
        // the server's bare SYN with SYN/ACK (§8).
        peer_window_ = seg.hdr.window;  // combined-strategy hook
        if (seg.hdr.mss != 0) peer_mss_ = seg.hdr.mss;
        rcv_nxt_ = seg.hdr.seq + 1;
        snd_nxt_ -= 1;  // re-send our SYN sequence number with the ACK
        transmit(wire::kSynAck, {});
        snd_nxt_ += 1;
        state_ = State::kSynReceived;
      }
      break;
    case State::kSynReceived:
      if (f.ack() && !f.syn()) {
        state_ = State::kEstablished;
        established_once_ = true;
        flush_pending();
      }
      break;
    case State::kEstablished: {
      if (f.ack()) {
        // Prune retransmission queue: anything fully covered by the ACK.
        std::erase_if(unacked_, [&](const Unacked& u) {
          return u.seq + u.payload.size() <= seg.hdr.ack;
        });
      }
      if (!seg.payload.empty()) {
        // Count only segments extending past everything seen so far, so a
        // retransmitted duplicate is not mistaken for fresh delivery.
        const std::uint32_t seg_end =
            seg.hdr.seq + static_cast<std::uint32_t>(seg.payload.size());
        if (!any_data_seen_ ||
            static_cast<std::int32_t>(seg_end - highest_data_seq_) > 0) {
          ++data_segments_;
          highest_data_seq_ = seg_end;
          any_data_seen_ = true;
        }
        if (seg.hdr.seq == rcv_nxt_) {
          rcv_nxt_ += static_cast<std::uint32_t>(seg.payload.size());
          received_.insert(received_.end(), seg.payload.begin(),
                           seg.payload.end());
        }
        transmit(wire::kAck, {});
      }
      if (f.fin()) {
        rcv_nxt_ += 1;
        transmit(wire::kAck, {});
      }
      break;
    }
    case State::kClosed:
    case State::kReset:
      break;
  }
}

// --------------------------------------------------------------------- Host

Host::Host(std::string name, util::Ipv4Addr addr)
    : Node(std::move(name), addr),
      reassembler_(wire::ReassemblyConfig{}) {}

void Host::set_reassembly(wire::ReassemblyConfig cfg) {
  reassembler_ = wire::Reassembler(cfg);
}

void Host::record(const wire::Packet& pkt, bool outbound) {
  if (captured_.size() >= capture_limit_) return;
  captured_.push_back({net().now(), outbound, pkt});
}

void Host::send_packet(wire::Packet pkt) {
  record(pkt, /*outbound=*/true);
  net().forward(id(), std::move(pkt));
}

void Host::send_tcp(util::Ipv4Addr dst, const wire::TcpHeader& tcp,
                    std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  wire::Ipv4Header ip;
  ip.src = addr();
  ip.dst = dst;
  ip.ttl = ttl;
  ip.id = next_ip_id();
  send_packet(wire::make_tcp_packet(ip, tcp, payload));
}

void Host::send_udp(util::Ipv4Addr dst, std::uint16_t src_port,
                    std::uint16_t dst_port,
                    std::span<const std::uint8_t> payload, std::uint8_t ttl) {
  wire::Ipv4Header ip;
  ip.src = addr();
  ip.dst = dst;
  ip.ttl = ttl;
  ip.id = next_ip_id();
  send_packet(wire::make_udp_packet(ip, {src_port, dst_port}, payload));
}

void Host::send_ping(util::Ipv4Addr dst, std::uint16_t icmp_id,
                     std::uint16_t seq, std::uint8_t ttl) {
  wire::IcmpMessage msg;
  msg.type = wire::IcmpType::kEchoRequest;
  msg.id = icmp_id;
  msg.seq = seq;
  wire::Ipv4Header ip;
  ip.src = addr();
  ip.dst = dst;
  ip.ttl = ttl;
  ip.id = next_ip_id();
  send_packet(wire::make_icmp_packet(ip, msg));
}

void Host::listen(std::uint16_t port, TcpServerOptions opts) {
  services_[port] = std::move(opts);
}

void Host::close_port(std::uint16_t port) { services_.erase(port); }

void Host::udp_listen(std::uint16_t port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

TcpClient& Host::connect(util::Ipv4Addr dst, std::uint16_t dst_port,
                         TcpClientOptions opts) {
  const FlowKey key{dst, dst_port, opts.src_port};
  auto& slot = clients_[key];
  slot.reset(new TcpClient(*this, dst, dst_port, opts));
  slot->start();
  return *slot;
}

void Host::reset_traffic_state() {
  captured_.clear();
  clients_.clear();
  server_flows_.clear();
}

void Host::receive(wire::Packet pkt, NodeId /*from*/) {
  record(pkt, /*outbound=*/false);
  if (pkt.ip.dst != addr()) return;  // not ours (host does not forward)

  if (pkt.ip.is_fragment()) {
    auto whole = reassembler_.push(std::move(pkt), net().now());
    reassembler_.expire(net().now());
    if (!whole) return;
    pkt = std::move(*whole);
    record(pkt, /*outbound=*/false);  // record the reassembled datagram too
  }

  switch (pkt.ip.proto) {
    case wire::IpProto::kTcp:
      handle_tcp(pkt);
      break;
    case wire::IpProto::kUdp:
      handle_udp(pkt);
      break;
    case wire::IpProto::kIcmp:
      handle_icmp(pkt);
      break;
  }
}

void Host::handle_icmp(const wire::Packet& pkt) {
  auto msg = wire::parse_icmp(pkt);
  if (!msg) return;
  if (msg->type == wire::IcmpType::kEchoRequest && respond_icmp_echo) {
    wire::IcmpMessage reply = *msg;
    reply.type = wire::IcmpType::kEchoReply;
    wire::Ipv4Header ip;
    ip.src = addr();
    ip.dst = pkt.ip.src;
    ip.ttl = default_ttl;
    ip.id = next_ip_id();
    send_packet(wire::make_icmp_packet(ip, reply));
  }
}

void Host::handle_udp(const wire::Packet& pkt) {
  auto dgram = wire::parse_udp(pkt);
  if (!dgram) return;
  if (auto* handler = udp_handlers_.find(dgram->hdr.dst_port))
    handler->second(*this, pkt.ip.src, *dgram);
}

void Host::handle_tcp(const wire::Packet& pkt) {
  auto seg_opt = wire::parse_tcp(pkt);
  if (!seg_opt) return;
  const wire::TcpSegment& seg = *seg_opt;

  // 1. Client connections match on the full 4-tuple.
  if (auto* client = clients_.find(
          FlowKey{pkt.ip.src, seg.hdr.src_port, seg.hdr.dst_port})) {
    client->second->handle(seg);
    return;
  }

  // 2. Listening services.
  const auto* svc_entry = services_.find(seg.hdr.dst_port);
  if (svc_entry == nullptr) {
    if (rst_on_closed_port && !seg.hdr.flags.rst()) {
      wire::TcpHeader rst;
      rst.src_port = seg.hdr.dst_port;
      rst.dst_port = seg.hdr.src_port;
      rst.seq = seg.hdr.ack;
      rst.ack = seg.hdr.seq + (seg.hdr.flags.syn() ? 1 : 0) +
                static_cast<std::uint32_t>(seg.payload.size());
      rst.flags = wire::kRstAck;
      rst.window = 0;
      send_tcp(pkt.ip.src, rst, {}, default_ttl);
    }
    return;
  }
  const TcpServerOptions& opts = svc_entry->second;

  const FlowKey key{pkt.ip.src, seg.hdr.src_port, seg.hdr.dst_port};
  const wire::TcpFlags f = seg.hdr.flags;

  if (f.rst()) {
    server_flows_.erase(key);
    return;
  }

  auto* flow_entry = server_flows_.find(key);
  if (flow_entry != nullptr && f.is_syn_only()) {
    // A fresh SYN on a known tuple restarts the connection (no TIME_WAIT in
    // this mini-stack); measurement code reuses tuples across trials.
    server_flows_.erase(key);
    flow_entry = nullptr;
  }
  if (flow_entry == nullptr) {
    if (!f.syn() || f.ack()) return;  // only a fresh SYN opens a flow
    ServerFlow flow;
    flow.rcv_nxt = seg.hdr.seq + 1;  // SYN payload, if any, is ignored
    flow.peer_mss = seg.hdr.mss;
    flow.snd_nxt = next_iss_;
    next_iss_ += 64 * 1024;
    if (opts.split_handshake) {
      // §8 server-side strategy: reply with a bare SYN; the client will
      // SYN/ACK back and we complete with an ACK.
      flow.state = ServerFlowState::kSynSentSplit;
      server_transmit(key, flow, wire::kSyn, {}, opts.window);
    } else {
      flow.state = ServerFlowState::kSynReceived;
      server_transmit(key, flow, wire::kSynAck, {}, opts.window);
    }
    flow.snd_nxt += 1;  // our SYN consumed a sequence number
    server_flows_[key] = flow;
    return;
  }

  ServerFlow& flow = flow_entry->second;
  switch (flow.state) {
    case ServerFlowState::kSynSentSplit:
      if (f.is_syn_ack() && seg.hdr.ack == flow.snd_nxt) {
        flow.state = ServerFlowState::kEstablished;
        server_transmit(key, flow, wire::kAck, {}, opts.window);
      }
      return;
    case ServerFlowState::kSynReceived:
      if (f.ack()) flow.state = ServerFlowState::kEstablished;
      if (seg.payload.empty()) return;
      [[fallthrough]];
    case ServerFlowState::kEstablished: {
      if (f.ack()) {
        std::erase_if(flow.unacked, [&](const UnackedSegment& u) {
          return u.seq + u.payload.size() <= seg.hdr.ack;
        });
      }
      if (seg.payload.empty()) {
        if (f.fin()) {
          flow.rcv_nxt += 1;
          server_transmit(key, flow, wire::kFinAck, {}, opts.window);
          flow.snd_nxt += 1;
        }
        return;
      }
      if (seg.hdr.seq != flow.rcv_nxt) {
        // Out-of-order (e.g. the censor ate an earlier segment): dup-ACK.
        server_transmit(key, flow, wire::kAck, {}, opts.window);
        return;
      }
      flow.rcv_nxt += static_cast<std::uint32_t>(seg.payload.size());
      server_transmit(key, flow, wire::kAck, {}, opts.window);
      if (opts.on_data) {
        util::Bytes response = opts.on_data(seg.payload);
        if (!response.empty()) {
          if (opts.response_delay > util::Duration{}) {
            net().sim().schedule(
                opts.response_delay,
                [this, port = seg.hdr.dst_port, key,
                 r = std::move(response)]() mutable {
                  server_respond_data(port, key, std::move(r));
                });
          } else {
            server_respond_data(seg.hdr.dst_port, key, std::move(response));
          }
        }
      }
      return;
    }
  }
}

void Host::server_respond_data(std::uint16_t port, const FlowKey& key,
                               util::Bytes response) {
  auto* entry = server_flows_.find(key);
  if (entry == nullptr) return;  // flow torn down meanwhile
  const auto* svc = services_.find(port);
  if (svc == nullptr) return;
  ServerFlow& flow = entry->second;
  std::size_t seg_limit = svc->second.max_segment;
  if (flow.peer_mss != 0)
    seg_limit = std::min<std::size_t>(seg_limit, flow.peer_mss);
  std::size_t offset = 0;
  while (offset < response.size()) {
    const std::size_t n = std::min(seg_limit, response.size() - offset);
    auto chunk = std::span(response).subspan(offset, n);
    server_transmit(key, flow, wire::kPshAck, chunk, svc->second.window);
    flow.unacked.push_back(
        {flow.snd_nxt, util::Bytes(chunk.begin(), chunk.end()), 0});
    flow.snd_nxt += static_cast<std::uint32_t>(n);
    offset += n;
  }
  if (!flow.unacked.empty()) arm_server_retx(port, key);
}

void Host::arm_server_retx(std::uint16_t port, const FlowKey& key) {
  auto* entry = server_flows_.find(key);
  if (entry == nullptr || entry->second.retx_armed) return;
  entry->second.retx_armed = true;
  net().sim().schedule(util::Duration::seconds(1), [this, port, key] {
    server_retx_tick(port, key);
  });
}

void Host::server_retx_tick(std::uint16_t port, const FlowKey& key) {
  auto* entry = server_flows_.find(key);
  if (entry == nullptr) return;
  ServerFlow& flow = entry->second;
  flow.retx_armed = false;
  const auto* svc = services_.find(port);
  if (svc == nullptr) {
    flow.unacked.clear();
    return;
  }
  for (auto u = flow.unacked.begin(); u != flow.unacked.end();) {
    if (++u->attempts > 8) {
      u = flow.unacked.erase(u);
      continue;
    }
    wire::TcpHeader tcp;
    tcp.src_port = key.local_port;
    tcp.dst_port = key.peer_port;
    tcp.seq = u->seq;
    tcp.ack = flow.rcv_nxt;
    tcp.flags = wire::kPshAck;
    tcp.window = svc->second.window;
    send_tcp(key.peer, tcp, u->payload, default_ttl);
    ++u;
  }
  if (!flow.unacked.empty()) arm_server_retx(port, key);
}

void Host::server_transmit(const FlowKey& key, const ServerFlow& flow,
                           wire::TcpFlags flags,
                           std::span<const std::uint8_t> payload,
                           std::uint16_t window) {
  wire::TcpHeader tcp;
  tcp.src_port = key.local_port;
  tcp.dst_port = key.peer_port;
  tcp.seq = flow.snd_nxt;
  tcp.ack = flags.ack() ? flow.rcv_nxt : 0;
  tcp.flags = flags;
  tcp.window = window;
  if (flags.syn()) {
    const auto* svc = services_.find(key.local_port);
    if (svc != nullptr) tcp.mss = svc->second.mss;
  }
  send_tcp(key.peer, tcp, payload, default_ttl);
}

}  // namespace tspu::netsim
