// The Network: owns all nodes, links, and the simulator clock; moves packets.
#pragma once

#include <memory>
#include <vector>

#include "netsim/faults.h"
#include "netsim/node.h"
#include "netsim/sim.h"
#include "util/flat_map.h"
#include "util/rng.h"
#include "util/time.h"
#include "wire/ipv4.h"

namespace tspu::netsim {

class Middlebox;

class Network final : private PacketSink {
 public:
  /// Registers itself as the simulator's packet sink: scheduled packet
  /// deliveries come back through deliver_scheduled without a per-packet
  /// closure ever touching the event heap.
  Network() { sim_.set_packet_sink(this); }

  /// Takes ownership; returns the node's id. The node's address (if nonzero)
  /// becomes resolvable via find_by_addr.
  NodeId add(std::unique_ptr<Node> node);

  /// Creates a bidirectional link with the given one-way propagation delay.
  void link(NodeId a, NodeId b, util::Duration delay = util::Duration::millis(1));

  /// Sets a random-loss probability on the (bidirectional) a—b link. The
  /// paper repeats every measurement >5 times "to account for the TSPU
  /// failure or transient routing changes" (§3) — this is the transient
  /// part, for tests of measurement robustness.
  void set_link_loss(NodeId a, NodeId b, double probability);

  /// Seeds the deterministic RNG behind link loss.
  void seed_loss_rng(std::uint64_t seed) { loss_rng_.reseed(seed); }

  /// Installs a fault plan on the (bidirectional) a—b link; each direction
  /// keeps its own chain state and RNG stream. Overwrites a prior plan.
  void set_link_faults(NodeId a, NodeId b, LinkFaultPlan plan);

  /// Fault plan applied to every link without a per-link plan — the way the
  /// national fault-matrix benches degrade the whole topology at once.
  void set_default_link_faults(LinkFaultPlan plan);

  /// Removes every fault plan (per-link and default) and all chain state.
  void clear_link_faults();

  /// Rotates the root behind every per-link fault stream, marks the current
  /// sim instant as the trial epoch for flap windows, and resets chain
  /// state + stats. Called by begin_trial(); per-link streams re-derive
  /// statelessly from (root, edge), so lazily-created state stays identical
  /// across job counts.
  void reseed_fault_rngs(std::uint64_t seed);

  /// True when a fault plan currently holds the from->to link down.
  bool fault_link_down(NodeId from, NodeId to) const;

  const LinkFaultStats& fault_stats() const { return fault_stats_; }

  /// Splices `box` into the existing a—b link: a—box—b. Routing tables on
  /// a and b are rewritten so the box is transparent to routing; `a` becomes
  /// the box's "left" side and `b` its "right" side. Returns the box's id.
  NodeId insert_inline(NodeId a, NodeId b, std::unique_ptr<Middlebox> box);

  /// Sends `pkt` from `from` toward pkt.ip.dst using from's routing table
  /// (hosts and routers) — the normal forwarding entry point.
  void forward(NodeId from, wire::Packet pkt);

  /// Delivers `pkt` directly onto the link from `from` to `to` (used by
  /// middleboxes, which forward by interface rather than by routing).
  void transmit(NodeId from, NodeId to, wire::Packet pkt);

  bool linked(NodeId a, NodeId b) const;

  Node& node(NodeId id) { return *nodes_.at(id); }
  const Node& node(NodeId id) const { return *nodes_.at(id); }
  std::size_t node_count() const { return nodes_.size(); }

  RoutingTable& routes(NodeId id) { return tables_.at(id); }

  NodeId find_by_addr(util::Ipv4Addr addr) const;

  Simulator& sim() { return sim_; }
  util::Instant now() const { return sim_.now(); }

  /// Total packets handed to transmit(); a cheap activity counter for tests.
  std::uint64_t packets_transmitted() const { return packets_transmitted_; }

 private:
  struct LinkFaultState {
    GilbertElliottState chain;
    util::Rng rng{0};
    /// Last instant a packet stepped this direction's chain — the idle gap
    /// fed to GilbertElliottState::relax for time-clocked burst decay.
    util::Instant last_packet;
  };

  util::Duration delay_of(NodeId a, NodeId b) const;

  /// The plan governing from->to, or nullptr when no fault applies.
  const LinkFaultPlan* fault_plan(NodeId from, NodeId to) const;
  /// Lazily creates the per-direction chain state, seeded statelessly.
  LinkFaultState& fault_state(NodeId from, NodeId to);

  /// Common tail of transmit(): counts the packet and schedules delivery
  /// after `delay`. Every path — clean, duplicated, reordered — funnels
  /// through here, and delivery re-checks flap windows so a link that went
  /// down mid-flight never delivers (TSPU_AUDIT-enforced).
  void deliver(NodeId from, NodeId to, wire::Packet pkt,
               util::Duration delay);

  /// PacketSink: runs at the delivery instant for every scheduled packet —
  /// re-checks flap windows (a link that went down mid-flight eats the
  /// packet) and hands it to the destination node.
  void deliver_scheduled(NodeId from, NodeId to, wire::Packet pkt) override;

  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<RoutingTable> tables_;
  // Adjacency with per-direction delays (delays are symmetric today, but the
  // map is directional so asymmetric-latency scenarios stay possible). Flat
  // maps: transmit() resolves an edge per packet-hop, and find_by_addr runs
  // per probe, so these are the simulator's hottest lookups.
  util::FlatMap<std::pair<NodeId, NodeId>, util::Duration> edges_;
  util::FlatMap<std::pair<NodeId, NodeId>, double> loss_;
  util::Rng loss_rng_{0x105511ull};
  // Fault-injection layer (netsim/faults.h). Plans are per-direction;
  // chain/RNG state is created lazily with order-independent seeds.
  util::FlatMap<std::pair<NodeId, NodeId>, LinkFaultPlan> fault_plans_;
  LinkFaultPlan default_fault_plan_;
  bool has_default_fault_plan_ = false;
  util::FlatMap<std::pair<NodeId, NodeId>, LinkFaultState> fault_states_;
  std::uint64_t fault_seed_root_ = 0xfa017ull;
  util::Instant fault_epoch_;
  LinkFaultStats fault_stats_;
  util::FlatMap<util::Ipv4Addr, NodeId> by_addr_;
  std::uint64_t packets_transmitted_ = 0;
};

}  // namespace tspu::netsim
