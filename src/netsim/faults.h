// Deterministic fault injection for links and TSPU devices.
//
// The paper's methodology quietly assumes failure: every measurement is
// repeated ">5 times to account for the TSPU failure or transient routing
// changes" (§3), and remote scans must tolerate unreachable endpoints. This
// module makes those failure modes first-class and *seedable* so the
// retry/confidence layer (measure/retry.h) can be stress-tested:
//
//   - bursty loss via a Gilbert–Elliott two-state chain (alongside the
//     existing i.i.d. Network::set_link_loss knob),
//   - packet duplication, reordering, and payload corruption,
//   - latency jitter and link flaps (down/up windows on the sim clock),
//   - TSPU device faults: fail-open, fail-closed, and mid-flow reboots
//     that wipe conntrack/fragment state (the "TSPU failure" of §3).
//
// Determinism contract: every random draw comes from a per-link util::Rng
// whose seed derives statelessly from (fault seed root, link endpoints), and
// the root is rotated by begin_trial() — so sharded runs stay byte-identical
// for any TSPU_BENCH_JOBS value regardless of packet order or when a link's
// fault state is lazily created. Flap/reboot windows are expressed relative
// to the trial epoch (the reseed instant), not absolute sim time, because
// begin_trial advances the virtual clock ~1000 s between items.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ip.h"
#include "util/rng.h"
#include "util/time.h"

namespace tspu::netsim {

/// Two-state Markov loss chain (Gilbert–Elliott). In the "good" state
/// packets are lost with `loss_good`, in the "bad" state with `loss_bad`;
/// the chain transitions after each packet. With loss_bad = 1 this yields
/// loss bursts whose mean length is 1 / p_exit_bad — the transient-outage
/// shape that i.i.d. loss cannot produce.
struct GilbertElliott {
  double p_enter_bad = 0.0;  ///< P(good -> bad) per packet; 0 disables
  double p_exit_bad = 0.25;  ///< P(bad -> good) per packet
  double loss_good = 0.0;
  double loss_bad = 1.0;
  /// Chain clock in virtual steps per second. 0 (the default) is the
  /// classic packet-clocked GE chain: one transition per packet, so a
  /// burst freezes across an idle gap (a retry backoff cannot decorrelate
  /// attempts) yet a back-to-back fragment train gives it dozens of
  /// chances to start mid-train. A positive rate switches the chain to
  /// TIME clocking: packets only SAMPLE the current state (a train sent
  /// in one instant sees one state — a burst eats all of it or none),
  /// and the state advances between events via the closed-form k-step
  /// transition over the elapsed gap (one RNG draw per gap). That models
  /// outages that start and end on the wall clock, which is what makes
  /// spaced retry attempts genuinely independent.
  double relax_steps_per_second = 0.0;

  bool enabled() const { return p_enter_bad > 0.0; }

  /// Stationary probability of being in the bad state.
  double stationary_bad() const;
  /// Long-run mean loss rate (closed form; tested against simulation).
  double mean_loss() const;
  /// Mean sojourn in the bad state, in packets (== mean burst length when
  /// loss_bad is 1).
  double mean_burst_length() const;

  /// P(chain is bad after `k` steps | currently bad == `bad_now`) — the
  /// exact two-state k-step transition. Fractional k interpolates the
  /// matrix power, which is what an idle-time relaxation needs.
  double p_bad_after(bool bad_now, double k) const;

  /// Convenience: parameters for total-outage bursts (loss_bad = 1) with
  /// the given long-run loss rate and mean burst length in packets.
  static GilbertElliott bursty(double target_mean_loss,
                               double mean_burst_packets);
};

/// Per-link chain state. step() advances the chain one packet and reports
/// whether that packet is lost.
struct GilbertElliottState {
  bool bad = false;
  bool step(const GilbertElliott& params, util::Rng& rng);
  /// Draws a loss from the CURRENT state without transitioning — the
  /// per-packet draw of the time-clocked mode.
  bool sample(const GilbertElliott& params, util::Rng& rng);
  /// Applies `idle` worth of virtual steps (params.relax_steps_per_second)
  /// in one closed-form draw. No-op when the rate is 0 or idle is empty.
  void relax(const GilbertElliott& params, util::Duration idle,
             util::Rng& rng);
};

/// One down/up window, relative to the trial epoch (the last fault reseed).
struct FlapWindow {
  util::Duration down_at;
  util::Duration up_at;
};

/// True when `since_epoch` falls inside any [down_at, up_at) window.
bool flap_down(const std::vector<FlapWindow>& flaps,
               util::Duration since_epoch);

/// Everything that can go wrong on one link. Installed per-link via
/// Network::set_link_faults or network-wide via set_default_link_faults.
struct LinkFaultPlan {
  /// Extra i.i.d. loss drawn from the link's own fault stream (the legacy
  /// set_link_loss knob draws from a single shared RNG instead).
  double iid_loss = 0.0;
  /// Bursty loss; enabled when burst.p_enter_bad > 0.
  GilbertElliott burst;
  /// Probability a packet is transmitted twice (both copies then face the
  /// loss/corruption draws independently).
  double duplicate_prob = 0.0;
  /// Probability a packet is delayed by `reorder_delay`, letting later
  /// packets overtake it.
  double reorder_prob = 0.0;
  util::Duration reorder_delay = util::Duration::millis(3);
  /// Probability one payload byte is flipped in flight.
  double corrupt_prob = 0.0;
  /// Uniform extra delay in [0, jitter_max) added per packet.
  util::Duration jitter_max;
  /// Hard outage windows: packets sent or *delivered* while down are lost.
  std::vector<FlapWindow> flaps;

  bool any() const;
};

/// Counters for what the fault layer did (per Network, reset on reseed).
struct LinkFaultStats {
  std::uint64_t dropped_iid = 0;
  std::uint64_t dropped_burst = 0;
  std::uint64_t dropped_down = 0;  ///< lost to a flap window
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t corrupted = 0;

  std::uint64_t dropped_total() const {
    return dropped_iid + dropped_burst + dropped_down;
  }
};

/// How a TSPU device behaves while inside a fault window.
enum class DeviceFailMode {
  kFailOpen,    ///< forwards everything uninspected (censorship vanishes)
  kFailClosed,  ///< drops everything (the path hard-fails)
};

/// Fault plan for a TSPU device (core::Device::set_fault_plan). Windows and
/// reboot instants are relative to the trial epoch, captured at reseed().
struct DeviceFaultPlan {
  DeviceFailMode flap_mode = DeviceFailMode::kFailOpen;
  /// Outage windows during which flap_mode applies instead of inspection.
  std::vector<FlapWindow> flaps;
  /// Mid-flow reboot instants: at each, conntrack, fragment queues, and
  /// inspection reassembly are wiped (must be sorted ascending).
  std::vector<util::Duration> reboots;
  /// Also wipe state when a flap window ends — models the outage being a
  /// reboot rather than a bypass.
  bool reboot_on_recovery = true;

  bool any() const { return !flaps.empty() || !reboots.empty(); }
};

/// Stateless per-link stream seed: mixes the root with the directed link
/// endpoints via splitmix64 so lazily-created link states are independent
/// of creation order.
std::uint64_t fault_stream_seed(std::uint64_t root, std::uint32_t from,
                                std::uint32_t to);

// ---------------------------------------------------------------------------
// Flood campaigns: deterministic state-exhaustion attack traffic.
//
// Each campaign is a bursty train of crafted packets chosen to pin entries in
// one TSPU state table: SYN floods park half-open conntrack entries (60 s /
// 30 s timeouts), bare-ACK churn parks long-lived non-SYN entries (420/480 s),
// and fragment floods open reassembly queues that can never complete (5 s age
// discard). A FloodDriver replays campaigns from one source host on the sim
// clock; arm() restarts the schedule with a fresh spoof stream, which is how
// begin_trial() keeps flooded scans byte-identical across job counts.

class Host;

enum class FloodKind {
  kSynFlood,       ///< spoofed SYNs: half-open conntrack entries
  kFragmentFlood,  ///< never-completing fragment queues (MF set, no tail)
  kHalfOpenChurn,  ///< spoofed bare ACKs: long-lived non-SYN entries
};

const char* flood_kind_name(FloodKind k);

/// One background flood campaign, scheduled relative to arm() (the trial
/// epoch). Topology code fills `targets`/`spoof_base` with sensible defaults
/// when left unset, so tests usually only pick kind/rate/duration.
struct FloodCampaign {
  FloodKind kind = FloodKind::kSynFlood;
  /// Offset of the first burst from arm(); keep > 0 so a muted begin_trial
  /// never emits flood packets itself.
  util::Duration start = util::Duration::millis(10);
  /// Total campaign length. Finite by construction: run_until_idle() must
  /// terminate even mid-flood.
  util::Duration duration = util::Duration::seconds(5);
  int packets_per_burst = 32;
  util::Duration burst_interval = util::Duration::millis(50);
  /// Destinations, rotated per packet. Empty = let the topology choose.
  std::vector<util::Ipv4Addr> targets;
  std::uint16_t target_port = 9;
  /// Spoofed-source pool [spoof_base, spoof_base + spoof_count). Unset
  /// (0.0.0.0) = let the topology choose an address range that no real host
  /// answers from.
  util::Ipv4Addr spoof_base;
  std::uint32_t spoof_count = 1024;
  /// Payload bytes per flood fragment (rounded down to a multiple of 8).
  std::size_t fragment_payload = 512;

  bool active() const {
    return packets_per_burst > 0 && duration > util::Duration() &&
           burst_interval > util::Duration();
  }
};

/// Replays flood campaigns from one source host via self-rescheduling sim
/// callbacks. Every random draw (spoofed source, ports, IPIDs, target
/// rotation) comes from a private RNG reseeded by arm(), and callbacks from
/// a previous arm() generation no-op without touching it — so a trial's
/// flood traffic depends only on (campaign config, arm seed).
class FloodDriver {
 public:
  FloodDriver(Host& source, std::vector<FloodCampaign> campaigns);

  FloodDriver(const FloodDriver&) = delete;
  FloodDriver& operator=(const FloodDriver&) = delete;

  /// (Re)starts every campaign relative to the current sim instant: bumps
  /// the generation (orphaning callbacks scheduled by a previous trial) and
  /// reseeds the spoof stream. Called at topology construction and again by
  /// begin_trial() right after reseed_stochastic().
  void arm(std::uint64_t seed);

  const std::vector<FloodCampaign>& campaigns() const { return campaigns_; }
  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  void fire(std::size_t idx, std::uint64_t generation);
  void send_one(const FloodCampaign& c);

  Host& source_;
  std::vector<FloodCampaign> campaigns_;
  std::vector<util::Instant> end_at_;  ///< per-campaign stop time, set by arm()
  util::Rng rng_{0xf100dull};
  std::uint64_t generation_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace tspu::netsim
