// Node base class and routing table for the simulated internet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/ip.h"
#include "wire/ipv4.h"

namespace tspu::netsim {

class Network;

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~0u;

/// Longest-prefix-match table plus a default route. Hierarchical addressing
/// in the topology keeps these tables tiny (children prefixes + default up),
/// which is what lets the national-scale scans route in O(entries-per-node).
class RoutingTable {
 public:
  void add(util::Ipv4Prefix prefix, NodeId next_hop);
  void set_default(NodeId next_hop) { default_ = next_hop; }

  /// Longest matching prefix wins; falls back to the default route; returns
  /// kInvalidNode when nothing matches.
  NodeId lookup(util::Ipv4Addr dst) const;

  /// Rewrites every entry (and the default) pointing at `old_hop` to point at
  /// `new_hop`; used when a middlebox is inserted in-line on a link.
  void rewrite_next_hop(NodeId old_hop, NodeId new_hop);

 private:
  struct Entry {
    util::Ipv4Prefix prefix;
    NodeId next_hop;
  };
  std::vector<Entry> entries_;  // kept sorted by descending prefix length
  NodeId default_ = kInvalidNode;
};

class Node {
 public:
  Node(std::string name, util::Ipv4Addr addr) : name_(std::move(name)), addr_(addr) {}
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Called by the Network when a packet arrives over the link from `from`.
  virtual void receive(wire::Packet pkt, NodeId from) = 0;

  const std::string& name() const { return name_; }
  util::Ipv4Addr addr() const { return addr_; }
  NodeId id() const { return id_; }
  Network& net() const { return *net_; }

 private:
  friend class Network;
  std::string name_;
  util::Ipv4Addr addr_;
  NodeId id_ = kInvalidNode;
  Network* net_ = nullptr;
};

}  // namespace tspu::netsim
