// TLS record / ClientHello wire format — exactly the fields of Figure 13.
//
// The TSPU locates the SNI by *parsing* the ClientHello (record header →
// handshake header → fixed fields → extension walk), not by substring
// matching over the packet (§5.2, Appendix A). The builder here produces
// byte-real ClientHellos and the parser mirrors the walk the device performs,
// so the Figure-13 fuzzing experiment exercises genuine parser behavior.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace tspu::tls {

inline constexpr std::uint8_t kContentTypeHandshake = 0x16;
inline constexpr std::uint8_t kContentTypeApplicationData = 0x17;
inline constexpr std::uint8_t kHandshakeClientHello = 0x01;
inline constexpr std::uint8_t kHandshakeServerHello = 0x02;
inline constexpr std::uint16_t kExtensionServerName = 0x0000;
inline constexpr std::uint16_t kExtensionPadding = 0x0015;
inline constexpr std::uint16_t kVersionTls10 = 0x0301;
inline constexpr std::uint16_t kVersionTls12 = 0x0303;

struct Extension {
  std::uint16_t type = 0;
  util::Bytes body;
};

/// The knobs a measurement client can turn when crafting a ClientHello.
struct ClientHelloSpec {
  std::string sni;                          ///< empty = omit the SNI extension
  std::uint16_t record_version = kVersionTls10;
  std::uint16_t hello_version = kVersionTls12;
  std::vector<std::uint16_t> cipher_suites = {0xc02c, 0xc02b, 0xc030, 0x009f,
                                              0xcca9, 0xcca8, 0x009e, 0xc024};
  util::Bytes session_id;                   ///< up to 32 bytes
  std::vector<Extension> extra_extensions;  ///< appended after server_name
  std::size_t pad_to = 0;                   ///< >0: add padding ext to reach size
  std::uint8_t random_seed = 0x42;          ///< deterministic "random" fill
};

/// Serializes a full TLS record containing the ClientHello handshake.
util::Bytes build_client_hello(const ClientHelloSpec& spec);

/// Serializes a minimal ServerHello record (used by simulated TLS servers to
/// answer; its content is irrelevant to the TSPU, which keys on the CH).
util::Bytes build_server_hello(std::uint8_t random_seed = 0x24);

/// Result of walking a ClientHello the way the TSPU does.
struct ParsedClientHello {
  std::string sni;  ///< empty when no server_name extension present
  std::uint16_t record_version = 0;
  std::uint16_t hello_version = 0;
  std::size_t cipher_suite_count = 0;
  std::size_t extension_count = 0;
};

/// Zero-copy walk result: identical fields, but `sni` is a std::string_view
/// into the inspected buffer. Valid only while that buffer is alive and
/// unmodified — device code uses it strictly within one packet's handling.
struct ClientHelloView {
  std::string_view sni;  ///< empty when no server_name extension present
  std::uint16_t record_version = 0;
  std::uint16_t hello_version = 0;
  std::size_t cipher_suite_count = 0;
  std::size_t extension_count = 0;
};

/// Parses bytes as a TLS handshake record containing a ClientHello, walking
/// every type/length field. Returns nullopt whenever any structural field is
/// inconsistent — this models the observed behavior that corrupting "type" or
/// "length" positions changes how the TSPU reacts (Fig 13), while altering
/// opaque positions (random bytes, ciphersuite values) does not.
[[nodiscard]] std::optional<ParsedClientHello> parse_client_hello(
    std::span<const std::uint8_t> data);

/// Convenience: extract just the SNI; empty optional when unparseable or no
/// server_name extension is present.
[[nodiscard]] std::optional<std::string> extract_sni(
    std::span<const std::uint8_t> data);

/// Hardened variant (§8 "patch" discussion): walks EVERY TLS record in the
/// buffer instead of stopping at the first, so prepending a benign record
/// before the ClientHello no longer hides the SNI. Also tolerates a
/// ClientHello that is complete but embedded mid-buffer record stream.
[[nodiscard]] std::optional<std::string> extract_sni_multi_record(
    std::span<const std::uint8_t> data);

/// Zero-copy ClientHello walk: identical accept/reject semantics to
/// parse_client_hello (which is a thin copying wrapper over this), but the
/// SNI stays a view into `data`.
[[nodiscard]] std::optional<ClientHelloView> parse_client_hello_view(
    std::span<const std::uint8_t> data);

/// Zero-copy extract_sni: the returned view points into `data` and must not
/// outlive it. nullopt when unparseable or no server_name present.
[[nodiscard]] std::optional<std::string_view> find_sni_view(
    std::span<const std::uint8_t> data);

/// Zero-copy extract_sni_multi_record (same record-stream walk).
[[nodiscard]] std::optional<std::string_view> find_sni_view_multi_record(
    std::span<const std::uint8_t> data);

}  // namespace tspu::tls
