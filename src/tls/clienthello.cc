#include "tls/clienthello.h"

namespace tspu::tls {
namespace {

void put_random(util::ByteWriter& w, std::uint8_t seed, std::size_t n) {
  // Deterministic filler; TLS "random" content is opaque to the TSPU.
  std::uint8_t v = seed;
  for (std::size_t i = 0; i < n; ++i) {
    v = static_cast<std::uint8_t>(v * 131 + 7);
    w.u8(v);
  }
}

util::Bytes build_sni_extension(const std::string& host) {
  // server_name extension body: list length, entry type (0 = host_name),
  // name length, name bytes.
  util::ByteWriter body;
  body.u16(static_cast<std::uint16_t>(host.size() + 3));  // server_name_list
  body.u8(0);                                             // host_name
  body.u16(static_cast<std::uint16_t>(host.size()));
  body.raw(host);
  return std::move(body).take();
}

}  // namespace

util::Bytes build_client_hello(const ClientHelloSpec& spec) {
  // Handshake body first; lengths are back-patched.
  util::ByteWriter hs;
  hs.u16(spec.hello_version);
  put_random(hs, spec.random_seed, 32);
  hs.u8(static_cast<std::uint8_t>(spec.session_id.size()));
  hs.raw(spec.session_id);
  hs.u16(static_cast<std::uint16_t>(spec.cipher_suites.size() * 2));
  for (std::uint16_t cs : spec.cipher_suites) hs.u16(cs);
  hs.u8(1);  // compression methods length
  hs.u8(0);  // null compression

  std::vector<Extension> extensions;
  if (!spec.sni.empty()) {
    extensions.push_back({kExtensionServerName, build_sni_extension(spec.sni)});
  }
  for (const Extension& e : spec.extra_extensions) extensions.push_back(e);

  // Compute current size to decide padding.
  auto ext_bytes = [](const std::vector<Extension>& exts) {
    util::ByteWriter w;
    for (const Extension& e : exts) {
      w.u16(e.type);
      w.u16(static_cast<std::uint16_t>(e.body.size()));
      w.raw(e.body);
    }
    return std::move(w).take();
  };

  util::Bytes ext_payload = ext_bytes(extensions);
  // Record size = 5 (record hdr) + 4 (hs hdr) + hs fixed + 2 (ext len) + exts.
  std::size_t record_size = 5 + 4 + hs.size() + 2 + ext_payload.size();
  if (spec.pad_to > record_size) {
    std::size_t need = spec.pad_to - record_size;
    if (need < 4) need = 4;  // extension header is 4 bytes minimum
    Extension pad;
    pad.type = kExtensionPadding;
    pad.body.assign(need - 4, 0x00);
    extensions.push_back(std::move(pad));
    ext_payload = ext_bytes(extensions);
  }

  util::ByteWriter out;
  out.u8(kContentTypeHandshake);
  out.u16(spec.record_version);
  const std::size_t record_len_pos = out.size();
  out.u16(0);  // record length, patched below
  out.u8(kHandshakeClientHello);
  const std::size_t hs_len_pos = out.size();
  out.u24(0);  // handshake length, patched below
  out.raw(hs.bytes());
  out.u16(static_cast<std::uint16_t>(ext_payload.size()));
  out.raw(ext_payload);

  out.patch_u16(record_len_pos,
                static_cast<std::uint16_t>(out.size() - record_len_pos - 2));
  out.patch_u24(hs_len_pos,
                static_cast<std::uint32_t>(out.size() - hs_len_pos - 3));
  return std::move(out).take();
}

util::Bytes build_server_hello(std::uint8_t random_seed) {
  util::ByteWriter hs;
  hs.u16(kVersionTls12);
  put_random(hs, random_seed, 32);
  hs.u8(0);        // empty session id
  hs.u16(0xc02b);  // chosen cipher suite
  hs.u8(0);        // null compression
  hs.u16(0);       // no extensions

  util::ByteWriter out;
  out.u8(kContentTypeHandshake);
  out.u16(kVersionTls12);
  out.u16(static_cast<std::uint16_t>(4 + hs.size()));
  out.u8(kHandshakeServerHello);
  out.u24(static_cast<std::uint32_t>(hs.size()));
  out.raw(hs.bytes());
  return std::move(out).take();
}

std::optional<ClientHelloView> parse_client_hello_view(
    std::span<const std::uint8_t> data) {
  try {
    util::ByteReader r(data);
    ClientHelloView out;

    // --- TLS record header ---
    if (r.u8() != kContentTypeHandshake) return std::nullopt;
    out.record_version = r.u16();
    // The TSPU accepts any plausible TLS version major byte (§5.2 fuzzing:
    // "changing TLS versions" did not stop blocking) but a nonsense version
    // field means this is not TLS at all.
    if ((out.record_version >> 8) != 0x03) return std::nullopt;
    const std::uint16_t record_len = r.u16();
    if (record_len > r.remaining()) return std::nullopt;
    util::ByteReader rec = r.sub(record_len);

    // --- Handshake header ---
    if (rec.u8() != kHandshakeClientHello) return std::nullopt;
    const std::uint32_t hs_len = rec.u24();
    if (hs_len != rec.remaining()) return std::nullopt;

    // --- ClientHello fixed fields ---
    out.hello_version = rec.u16();
    rec.skip(32);  // random: opaque to the DPI
    const std::uint8_t session_len = rec.u8();
    rec.skip(session_len);
    const std::uint16_t cs_len = rec.u16();
    if (cs_len % 2 != 0) return std::nullopt;
    out.cipher_suite_count = cs_len / 2;
    rec.skip(cs_len);  // suite values themselves are opaque
    const std::uint8_t comp_len = rec.u8();
    rec.skip(comp_len);

    // --- Extension walk: this is where the SNI is located ---
    const std::uint16_t ext_total = rec.u16();
    if (ext_total != rec.remaining()) return std::nullopt;
    util::ByteReader exts = rec.sub(ext_total);
    while (!exts.done()) {
      const std::uint16_t type = exts.u16();
      const std::uint16_t len = exts.u16();
      util::ByteReader body = exts.sub(len);
      ++out.extension_count;
      if (type == kExtensionServerName) {
        const std::uint16_t list_len = body.u16();
        if (list_len != body.remaining()) return std::nullopt;
        const std::uint8_t name_type = body.u8();
        if (name_type != 0) return std::nullopt;  // host_name
        const std::uint16_t name_len = body.u16();
        out.sni = body.str_view(name_len);
      }
      // Other extensions (including padding) are skipped: "The TSPU ignores
      // other TLS extensions" (Appendix A).
    }
    return out;
  } catch (const util::ParseError&) {
    return std::nullopt;
  }
}

std::optional<ParsedClientHello> parse_client_hello(
    std::span<const std::uint8_t> data) {
  const auto view = parse_client_hello_view(data);
  if (!view) return std::nullopt;
  ParsedClientHello out;
  out.sni.assign(view->sni);
  out.record_version = view->record_version;
  out.hello_version = view->hello_version;
  out.cipher_suite_count = view->cipher_suite_count;
  out.extension_count = view->extension_count;
  return out;
}

std::optional<std::string_view> find_sni_view(
    std::span<const std::uint8_t> data) {
  const auto parsed = parse_client_hello_view(data);
  if (!parsed || parsed->sni.empty()) return std::nullopt;
  return parsed->sni;
}

std::optional<std::string> extract_sni(std::span<const std::uint8_t> data) {
  const auto sni = find_sni_view(data);
  if (!sni) return std::nullopt;
  return std::string(*sni);
}

std::optional<std::string_view> find_sni_view_multi_record(
    std::span<const std::uint8_t> data) {
  std::size_t offset = 0;
  while (offset + 5 <= data.size()) {
    auto rest = data.subspan(offset);
    if (auto sni = find_sni_view(rest)) return sni;
    // Skip this record (if it frames correctly) and try the next one.
    util::ByteReader hdr(rest);
    const std::uint8_t content_type = hdr.u8();
    if (content_type != kContentTypeHandshake &&
        content_type != kContentTypeApplicationData) {
      return std::nullopt;  // not a TLS record stream at all
    }
    hdr.skip(2);  // record version
    const std::size_t advance = 5 + hdr.u16();
    if (offset + advance > data.size()) return std::nullopt;
    offset += advance;
  }
  return std::nullopt;
}

std::optional<std::string> extract_sni_multi_record(
    std::span<const std::uint8_t> data) {
  const auto sni = find_sni_view_multi_record(data);
  if (!sni) return std::nullopt;
  return std::string(*sni);
}

}  // namespace tspu::tls
