#include "tls/fuzz.h"

namespace tspu::tls {
namespace {

util::Bytes baseline(const std::string& sni) {
  ClientHelloSpec spec;
  spec.sni = sni;
  return build_client_hello(spec);
}

}  // namespace

std::vector<Alteration> alteration_suite(const std::string& trigger_sni) {
  std::vector<Alteration> out;

  {
    Alteration a;
    a.name = "baseline";
    a.bytes = baseline(trigger_sni);
    a.sni_still_visible = true;
    out.push_back(std::move(a));
  }
  {
    // Padding extension grows the record; SNI remains parseable (§8: padding
    // a CH across packets evades, but padding alone within one packet does
    // not change parse results).
    ClientHelloSpec spec;
    spec.sni = trigger_sni;
    spec.pad_to = 1200;
    Alteration a;
    a.name = "padding_extension";
    a.bytes = build_client_hello(spec);
    a.sni_still_visible = true;
    out.push_back(std::move(a));
  }
  {
    ClientHelloSpec spec;
    spec.sni = trigger_sni;
    spec.hello_version = 0x0302;  // TLS 1.1
    spec.record_version = 0x0303;
    Alteration a;
    a.name = "changed_tls_versions";
    a.bytes = build_client_hello(spec);
    a.sni_still_visible = true;
    out.push_back(std::move(a));
  }
  {
    ClientHelloSpec spec;
    spec.sni = trigger_sni;
    spec.cipher_suites.assign(48, 0x1301);  // bloated, unusual suite list
    Alteration a;
    a.name = "altered_ciphersuites";
    a.bytes = build_client_hello(spec);
    a.sni_still_visible = true;
    out.push_back(std::move(a));
  }
  {
    ClientHelloSpec spec;
    spec.sni = trigger_sni;
    spec.extra_extensions.push_back({0x000d, util::to_bytes("\x00\x02\x04\x03")});
    Alteration a;
    a.name = "extra_extension_sig_algs";
    a.bytes = build_client_hello(spec);
    a.sni_still_visible = true;
    out.push_back(std::move(a));
  }
  {
    // Corrupt the record length: parser can no longer frame the handshake.
    Alteration a;
    a.name = "masked_record_length";
    a.bytes = baseline(trigger_sni);
    a.bytes[3] = 0xff;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.bytes[4] = 0xff;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.sni_still_visible = false;
    out.push_back(std::move(a));
  }
  {
    // Corrupt the handshake type byte: no longer a ClientHello.
    Alteration a;
    a.name = "masked_handshake_type";
    a.bytes = baseline(trigger_sni);
    a.bytes[5] = 0x77;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.sni_still_visible = false;
    out.push_back(std::move(a));
  }
  {
    // Corrupt the ciphersuites length so the extension walk starts at the
    // wrong offset.
    Alteration a;
    a.name = "masked_ciphersuites_length";
    a.bytes = baseline(trigger_sni);
    // ciphersuites length sits at: 5 record + 4 hs + 2 ver + 32 random +
    // 1 sess-len (+0 session) = offset 44.
    a.bytes[44] = 0x7f;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.bytes[45] = 0xff;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.sni_still_visible = false;
    out.push_back(std::move(a));
  }
  {
    // Wrong record content type: not a handshake record at all.
    Alteration a;
    a.name = "content_type_appdata";
    a.bytes = baseline(trigger_sni);
    a.bytes[0] = kContentTypeApplicationData;  // tspulint: allow(raw-buffer-index) deliberate corruption
    a.sni_still_visible = false;
    out.push_back(std::move(a));
  }
  {
    // Prepend a benign TLS record before the CH record. A single-record
    // parser (like the TSPU's, §8 "prepending the ClientHello with another
    // TLS record" evades) stops after the first record.
    Alteration a;
    a.name = "prepended_tls_record";
    util::ByteWriter w;
    w.u8(kContentTypeHandshake);
    w.u16(kVersionTls10);
    w.u16(4);
    w.u8(0x04);  // bogus handshake type (new_session_ticket)
    w.u24(0);
    w.raw(baseline(trigger_sni));
    a.bytes = std::move(w).take();
    a.sni_still_visible = false;
    out.push_back(std::move(a));
  }
  return out;
}

std::vector<FieldClass> classify_bytes(const util::Bytes& ch) {
  std::vector<FieldClass> classes(ch.size(), FieldClass::kOpaque);
  auto parsed = parse_client_hello(ch);
  const std::string original_sni = parsed ? parsed->sni : "";

  for (std::size_t i = 0; i < ch.size(); ++i) {
    util::Bytes mutated = ch;
    mutated[i] ^= 0xa5;
    auto reparsed = parse_client_hello(mutated);
    if (!reparsed) {
      classes[i] = FieldClass::kStructural;
    } else if (reparsed->sni != original_sni) {
      // The parse survived but produced a different hostname: this byte is
      // part of the SNI data (or its inner lengths, which we still count as
      // SNI-relevant, matching the Figure-13 shading).
      classes[i] = FieldClass::kSniBytes;
    }
  }
  return classes;
}

}  // namespace tspu::tls
