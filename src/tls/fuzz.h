// ClientHello alteration strategies for the Figure-13 experiment: which byte
// positions of a triggering ClientHello does the TSPU actually inspect?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "tls/clienthello.h"

namespace tspu::tls {

/// One alteration of a baseline triggering ClientHello.
struct Alteration {
  std::string name;
  util::Bytes bytes;  ///< the altered ClientHello record
  /// Whether a correct Figure-13 parser should STILL find the triggering SNI
  /// after this alteration (ground truth used by tests/bench).
  bool sni_still_visible = false;
};

/// Byte-level classification of a position inside a baseline ClientHello,
/// reproducing Figure 13's shading.
enum class FieldClass {
  kStructural,  ///< type/length/version position: corrupting it derails parsing
  kSniBytes,    ///< part of the server_name data the TSPU matches on
  kOpaque,      ///< random, ciphersuite values, session id...: ignored by TSPU
};

/// The alteration suite from §5.2: padding the SNI, changing TLS versions,
/// adding ClientCert/ciphersuites, masking length fields, prepending records.
std::vector<Alteration> alteration_suite(const std::string& trigger_sni);

/// Labels every byte offset of `ch` with its FieldClass by re-parsing with
/// single-byte corruptions — the programmatic equivalent of Figure 13.
std::vector<FieldClass> classify_bytes(const util::Bytes& ch);

}  // namespace tspu::tls
