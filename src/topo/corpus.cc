#include "topo/corpus.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace tspu::topo {
namespace {

struct CategoryProfile {
  Category cat;
  const char* slug;           ///< used in generated domain names
  double tranco_share;        ///< share of the Tranco list
  double registry_share;      ///< share of the registry sample
  /// Probability a Tranco domain of this category is blocked by the TSPU
  /// even though it is NOT in the registry ("out-registry" blocking: Google
  /// services, circumvention tools, news, pornography — §6.3).
  double out_registry_block;
  std::array<const char*, 6> keywords;
};

// Shares are tuned so Figure 7's shape emerges: Informative Media the
// largest category, gambling/drugs/pirating nearly fully blocked (registry-
// heavy), technology/service mostly unblocked (Tranco-heavy).
constexpr CategoryProfile kProfiles[] = {
    {Category::kCircumvention, "vpn", 0.015, 0.020, 0.60,
     {"vpn", "proxy", "bypass", "tunnel", "anonymity", "censorship"}},
    {Category::kProvocative, "forum", 0.020, 0.045, 0.08,
     {"protest", "opposition", "rights", "activism", "petition", "corruption"}},
    {Category::kTechnology, "tech", 0.180, 0.020, 0.01,
     {"software", "developer", "cloud", "hardware", "opensource", "api"}},
    {Category::kPornography, "adult", 0.030, 0.055, 0.30,
     {"adult", "explicit", "camgirl", "xxx", "erotic", "nsfw"}},
    {Category::kService, "svc", 0.220, 0.030, 0.02,
     {"account", "delivery", "booking", "marketplace", "support", "webmail"}},
    {Category::kStreaming, "stream", 0.120, 0.080, 0.05,
     {"stream", "video", "music", "series", "live", "playlist"}},
    {Category::kPirating, "torrent", 0.020, 0.075, 0.15,
     {"torrent", "warez", "crack", "keygen", "rip", "magnet"}},
    {Category::kFinance, "fin", 0.080, 0.050, 0.01,
     {"bank", "invest", "crypto", "exchange", "loan", "broker"}},
    {Category::kGambling, "bet", 0.015, 0.230, 0.10,
     {"casino", "poker", "jackpot", "betting", "slots", "bookmaker"}},
    {Category::kDrugs, "pharma", 0.005, 0.065, 0.05,
     {"pills", "dose", "rx", "stimulant", "pharmacy", "narcotic"}},
    {Category::kInformativeMedia, "news", 0.230, 0.280, 0.06,
     {"news", "journalist", "report", "war", "blog", "media"}},
    {Category::kErrorPage, "park", 0.075, 0.050, 0.00,
     {"domain", "parked", "forbidden", "expired", "notfound", "placeholder"}},
};

const CategoryProfile& profile_of(Category c) {
  for (const auto& p : kProfiles)
    if (p.cat == c) return p;
  return kProfiles[0];
}

Category sample_category(util::Rng& rng, bool registry) {
  double roll = rng.uniform();
  for (const auto& p : kProfiles) {
    const double share = registry ? p.registry_share : p.tranco_share;
    if (roll < share) return p.cat;
    roll -= share;
  }
  return Category::kInformativeMedia;
}

/// Special-case domains named in the paper (Table 3, §5.2). Behaviors:
/// SNI-IV targets are all also SNI-I targets; SNI-II domains are distinct.
struct NamedDomain {
  const char* name;
  Category cat;
  bool sni_i, sni_ii, sni_iv;
  bool in_tranco, in_registry;
};
constexpr NamedDomain kNamedDomains[] = {
    // SNI-I + SNI-IV: Twitter/Facebook/Instagram-family plus numbuster.ru.
    {"twitter.com", Category::kInformativeMedia, true, false, true, true, true},
    {"twimg.com", Category::kInformativeMedia, true, false, true, true, false},
    {"t.co", Category::kService, true, false, true, true, false},
    {"web.facebook.com", Category::kInformativeMedia, true, false, true, true, true},
    {"facebook.com", Category::kInformativeMedia, true, false, false, true, true},
    {"messenger.com", Category::kService, true, false, true, true, false},
    {"cdninstagram.com", Category::kStreaming, true, false, true, true, false},
    {"instagram.com", Category::kStreaming, true, false, false, true, true},
    {"numbuster.ru", Category::kService, true, false, true, false, false},
    // SNI-II ("out-registry" delayed-drop group).
    {"nordaccount.com", Category::kCircumvention, false, true, false, true, false},
    {"play.google.com", Category::kService, false, true, false, true, false},
    {"news.google.com", Category::kInformativeMedia, false, true, false, true, false},
    {"nordvpn.com", Category::kCircumvention, false, true, false, true, false},
    // Further SNI-I examples from Table 3.
    {"infox.sg", Category::kInformativeMedia, true, false, false, false, true},
    {"tor.eff.org", Category::kCircumvention, true, false, false, true, false},
    {"googlesyndication.com", Category::kService, true, false, false, true, false},
    {"theins.ru", Category::kInformativeMedia, true, false, false, false, true},
    {"dw.com", Category::kInformativeMedia, true, false, false, true, true},
    {"fbcdn.net", Category::kStreaming, true, false, false, true, false},
};

}  // namespace

std::string category_name(Category c) {
  switch (c) {
    case Category::kCircumvention: return "Circumvention";
    case Category::kProvocative: return "Provocative";
    case Category::kTechnology: return "Technology";
    case Category::kPornography: return "Pornography";
    case Category::kService: return "Service";
    case Category::kStreaming: return "Streaming";
    case Category::kPirating: return "Pirating";
    case Category::kFinance: return "Finance";
    case Category::kGambling: return "Gambling";
    case Category::kDrugs: return "Drugs";
    case Category::kInformativeMedia: return "Informative Media";
    case Category::kErrorPage: return "Error Page";
    case Category::kCount_: break;
  }
  return "?";
}

std::vector<std::string> category_keywords(Category c) {
  const CategoryProfile& p = profile_of(c);
  return std::vector<std::string>(p.keywords.begin(), p.keywords.end());
}

std::string synth_page_text(Category c, util::Rng& rng) {
  const CategoryProfile& p = profile_of(c);
  std::string text;
  // 12-24 keyword tokens, mostly from the category's bank with light noise
  // from neighbors — enough structure for keyword-scoring "LDA" to recover.
  const int n = static_cast<int>(rng.range(12, 24));
  for (int i = 0; i < n; ++i) {
    if (rng.uniform() < 0.85) {
      text += p.keywords[rng.below(p.keywords.size())];
    } else {
      const auto& other = kProfiles[rng.below(std::size(kProfiles))];
      text += other.keywords[rng.below(other.keywords.size())];
    }
    text += ' ';
  }
  return text;
}

DomainCorpus DomainCorpus::generate(const CorpusConfig& config) {
  DomainCorpus corpus;
  util::Rng rng(config.seed);

  std::uint32_t next_addr = util::Ipv4Addr(93, 184, 0, 10).value();
  auto allocate_addr = [&] { return util::Ipv4Addr(next_addr++); };

  auto push = [&](DomainInfo info) {
    info.address = allocate_addr();
    if (info.page_text.empty())
      info.page_text = synth_page_text(info.category, rng);
    corpus.index_[info.name] = corpus.domains_.size();
    corpus.domains_.push_back(std::move(info));
  };

  // 1. Named domains from the paper, always present regardless of scale.
  for (const NamedDomain& nd : kNamedDomains) {
    DomainInfo info;
    info.name = nd.name;
    info.category = nd.cat;
    info.in_tranco = nd.in_tranco;
    info.in_registry = nd.in_registry;
    // The named blocked domains entered the registry after Feb 24, 2022
    // (Table 3 note); day 55 = Feb 25.
    info.registry_added_day = nd.in_registry ? 55 + static_cast<int>(rng.below(10)) : 0;
    info.tspu.rst_ack = nd.sni_i;
    info.tspu.delayed_drop = nd.sni_ii;
    info.tspu.backup_drop = nd.sni_iv;
    push(std::move(info));
  }

  const auto scaled = [&](std::size_t n) {
    return static_cast<std::size_t>(std::llround(n * config.scale));
  };

  // 2. Tranco list: popular global domains, a minority TSPU-blocked —
  // mostly "out-registry" (§6.3) plus some that also sit in the registry.
  const std::size_t tranco_target = scaled(config.tranco_size);
  std::size_t serial = 0;
  while (corpus.domains_.size() < tranco_target) {
    DomainInfo info;
    const Category cat = sample_category(rng, /*registry=*/false);
    const CategoryProfile& p = profile_of(cat);
    info.name = std::string(p.slug) + "-t" + std::to_string(serial++) + ".com";
    info.category = cat;
    info.in_tranco = true;
    if (rng.uniform() < p.out_registry_block) {
      // Out-registry TSPU blocking (SNI-I), invisible to ISP blocklists.
      info.tspu.rst_ack = true;
      info.in_registry = false;
    } else if (rng.uniform() < 0.035) {
      // A small slice of popular domains sits in the (older) registry and is
      // blocked by both ISPs and the TSPU.
      info.in_registry = true;
      info.registry_added_day = -static_cast<int>(rng.range(30, 1500));
      info.tspu.rst_ack = true;
    }
    push(std::move(info));
  }

  // 3. Registry sample: 10,000 domains added since Jan 1, 2022, of which
  // the TSPU uniformly blocks 9,655 (§6.3).
  const std::size_t reg_target = scaled(config.registry_sample_size);
  const std::size_t reg_blocked = scaled(config.registry_tspu_blocked);
  for (std::size_t i = 0; i < reg_target; ++i) {
    DomainInfo info;
    const Category cat = sample_category(rng, /*registry=*/true);
    info.name =
        std::string(profile_of(cat).slug) + "-r" + std::to_string(i) + ".ru";
    info.category = cat;
    info.in_registry = true;
    // Added uniformly between Jan 1 (day 0) and late April (day 115), when
    // the paper's sample was drawn.
    info.registry_added_day = static_cast<int>(rng.below(116));
    info.tspu.rst_ack = i < reg_blocked;  // the rest lag behind at the TSPU
    push(std::move(info));
  }

  return corpus;
}

std::vector<const DomainInfo*> DomainCorpus::tranco_list() const {
  std::vector<const DomainInfo*> out;
  for (const DomainInfo& d : domains_)
    if (d.in_tranco) out.push_back(&d);
  return out;
}

std::vector<const DomainInfo*> DomainCorpus::registry_sample() const {
  std::vector<const DomainInfo*> out;
  for (const DomainInfo& d : domains_)
    if (d.in_registry && d.registry_added_day >= 0) out.push_back(&d);
  return out;
}

std::vector<std::pair<std::string, int>> DomainCorpus::registry_entries()
    const {
  std::vector<std::pair<std::string, int>> out;
  for (const DomainInfo& d : domains_)
    if (d.in_registry) out.emplace_back(d.name, d.registry_added_day);
  return out;
}

void DomainCorpus::install_policy(core::Policy& policy) const {
  for (const DomainInfo& d : domains_) {
    if (d.tspu.any()) policy.add_sni(d.name, d.tspu);
  }
}

const DomainInfo* DomainCorpus::find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &domains_[it->second];
}

std::optional<util::Ipv4Addr> DomainCorpus::resolve(
    const std::string& name) const {
  const DomainInfo* d = find(name);
  if (d == nullptr) return std::nullopt;
  return d->address;
}

}  // namespace tspu::topo
