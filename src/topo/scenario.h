// The Figure-1 measurement testbed: three residential vantage points inside
// Rostelecom (AS12389), ER-Telecom (AS50544) and OBIT (AS8492), two US
// measurement machines in one network, a Paris measurement machine sharing a
// data center with a (blocked) Tor entry node, and TSPU devices placed to
// match §5.2.1/§7.1.1:
//
//   Rostelecom: symmetric device within the first hops + an upstream-only
//               device one hop behind it (same AS, asymmetric return path)
//   OBIT:       symmetric device + upstream-only devices at the first link
//               of each transit (Rostelecom-transit / RasCom, by destination)
//   ER-Telecom: a single symmetric device
//
// Per-device failure rates are calibrated so the *observed* end-to-end
// failure percentages reproduce Table 1 (paths crossing two devices need
// both to fail).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ispdpi/blocklist.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/router.h"
#include "topo/corpus.h"
#include "tspu/device.h"

namespace tspu::topo {

struct VantagePoint {
  std::string isp;                 ///< "Rostelecom", "ER-Telecom", "OBIT"
  netsim::Host* host = nullptr;
  util::Ipv4Addr resolver;         ///< the ISP's DNS resolver
  util::Ipv4Addr blockpage;        ///< the ISP's blockpage address
  /// Ground truth (never consulted by measure::* code): devices on the
  /// upstream path, nearest first.
  std::vector<core::Device*> devices;
  /// Of those, how many see downstream traffic too.
  int symmetric_devices = 0;
};

struct ScenarioConfig {
  CorpusConfig corpus;
  std::uint64_t seed = 7;
  /// True models Feb 26 - Mar 4, 2022: twitter.com / fbcdn.net throttled
  /// (SNI-III) instead of RST/ACK-blocked.
  bool throttling_era = false;
  /// Zeroes all per-device failure rates. State-management experiments use
  /// this: the paper handled stochastic device misses by repeating every
  /// measurement >5 times (§3); deterministic devices give the same effect.
  bool perfect_devices = false;
  /// §8 "patch" capabilities applied to every device in the deployment
  /// (all off = the device as observed in 2022).
  core::DeviceCapabilities capabilities;
  /// When non-empty, installed as the network-wide default link fault plan
  /// (netsim/faults.h): bursty loss, duplication, reordering, corruption,
  /// jitter, flap windows. Streams are rotated by begin_trial().
  netsim::LinkFaultPlan link_faults;
  /// When non-empty, installed on every TSPU device: fail-open/fail-closed
  /// outage windows and mid-flow reboots relative to each trial's epoch.
  netsim::DeviceFaultPlan device_faults;
  /// Conntrack capacity budget applied to every device. Default unbounded —
  /// byte-identical to the pre-budget deployment.
  core::TableBudget conn_budget;
  /// Fragment-engine capacity budget applied to every device.
  core::TableBudget frag_budget;
  /// Overload policy (fail-open/fail-closed + hysteresis band) applied to
  /// every device; consulted only when a bounded table rejects admission.
  core::OverloadPolicy overload;
  /// Background flood campaigns: each vantage-point ISP gets a dedicated
  /// in-network flood source whose spoofed packets cross that ISP's devices
  /// upstream toward a silent sink abroad. Re-armed (fresh spoof streams)
  /// by every begin_trial(), so flooded scans stay job-count invariant.
  std::vector<netsim::FloodCampaign> floods;
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig config = {});

  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  netsim::Network& net() { return net_; }
  core::PolicyPtr policy() { return policy_; }
  const DomainCorpus& corpus() const { return corpus_; }

  std::vector<VantagePoint>& vantage_points() { return vps_; }
  VantagePoint& vp(const std::string& isp_name);

  /// us_machine(0): normal TLS server; us_machine(1): split-handshake TLS
  /// server (for SNI-IV tests, §6.2).
  netsim::Host& us_machine(int i) { return *us_mm_.at(i); }
  /// A quiet US machine with no services and no RST-on-closed-port, used for
  /// fully crafted packet-sequence experiments (§5.3.2, §5.3.3).
  netsim::Host& us_raw_machine() { return *us_raw_; }
  netsim::Host& paris_machine() { return *paris_mm_; }
  netsim::Host& tor_node() { return *tor_node_; }

  /// Addresses of the 6 additional out-registry blocked IPs (§5.2: VPN
  /// providers and Google services) besides the Tor node.
  const std::vector<util::Ipv4Addr>& extra_blocked_ips() const {
    return extra_blocked_ips_;
  }

  /// Flips the twitter.com/fbcdn.net policy between throttling (SNI-III,
  /// the Feb 26 - Mar 4 era) and RST/ACK (SNI-I, March 4 onward).
  void set_throttling_era(bool on);

  /// Drains all in-flight events.
  void settle() { net_.sim().run_until_idle(); }

  /// Background flood drivers, one per vantage-point ISP (empty unless
  /// config.floods was set).
  const std::vector<std::unique_ptr<netsim::FloodDriver>>& flood_drivers()
      const {
    return flood_drivers_;
  }

  /// Every TSPU device in the deployment, deduplicated, in vantage-point
  /// order — the deterministic iteration order the checkpoint codecs and
  /// reseed_stochastic rely on.
  std::vector<core::Device*> devices() const;

  /// Every measurement host (vantage points, US machines, Paris, Tor), in
  /// the order begin_trial resets them — the checkpoint codec's host order.
  std::vector<netsim::Host*> measurement_hosts() const;

  /// Reseeds every TSPU device's failure RNG from one root seed (forked per
  /// device, in vantage-point order).
  void reseed_stochastic(std::uint64_t seed);

  /// Isolates the next work item: drains and advances the virtual clock far
  /// past every device timeout so earlier items' conntrack/blocking state
  /// lazily expires, reseeds the devices from `item_seed`, and resets every
  /// measurement host's captures, flows, and protocol counters. See
  /// NationalTopology::begin_trial for the determinism contract.
  void begin_trial(std::uint64_t item_seed);

 private:
  netsim::NodeId add_router(const std::string& name, util::Ipv4Addr addr);
  netsim::Host* add_host(const std::string& name, util::Ipv4Addr addr);

  netsim::Network net_;
  core::PolicyPtr policy_;
  DomainCorpus corpus_;
  std::vector<VantagePoint> vps_;
  std::vector<netsim::Host*> us_mm_;
  netsim::Host* us_raw_ = nullptr;
  netsim::Host* paris_mm_ = nullptr;
  netsim::Host* tor_node_ = nullptr;
  std::vector<util::Ipv4Addr> extra_blocked_ips_;
  std::vector<std::shared_ptr<ispdpi::IspBlocklist>> blocklists_;
  std::vector<std::unique_ptr<netsim::FloodDriver>> flood_drivers_;
};

}  // namespace tspu::topo
