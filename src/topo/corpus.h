// Synthetic domain corpus standing in for the paper's test lists (§6.1):
// the Tranco top-10k + Citizen Lab list (11,325 unique domains) and a
// 10,000-domain sample of Roskomnadzor's blocking registry (entries added
// since 2022-01-01). Real lists are unavailable offline; the generator
// reproduces their *distributions*: category mix (Figure 7), TSPU blocking
// types (Table 3), registry/out-registry splits (Figure 6), and the named
// special-case domains the paper calls out verbatim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "tspu/policy.h"
#include "util/ip.h"
#include "util/rng.h"

namespace tspu::topo {

/// Figure 7's categories (plus Uncategorized for failed/empty pages).
enum class Category {
  kCircumvention,
  kProvocative,
  kTechnology,
  kPornography,
  kService,
  kStreaming,
  kPirating,
  kFinance,
  kGambling,
  kDrugs,
  kInformativeMedia,
  kErrorPage,
  kCount_,
};

std::string category_name(Category c);
inline constexpr int kCategoryCount = static_cast<int>(Category::kCount_);

struct DomainInfo {
  std::string name;
  Category category = Category::kInformativeMedia;
  bool in_tranco = false;
  bool in_registry = false;
  /// Days since 2022-01-01 the domain entered the registry; negative = added
  /// in earlier years; meaningless when !in_registry.
  int registry_added_day = 0;
  core::SniPolicy tspu;     ///< TSPU behavior (empty = not targeted)
  util::Ipv4Addr address;   ///< hosting address (outside Russia)
  std::string page_text;    ///< synthetic page content for topic modeling
};

struct CorpusConfig {
  /// Scales every population count; tests use small values (e.g. 0.02).
  double scale = 1.0;
  std::size_t tranco_size = 11325;
  std::size_t registry_sample_size = 10000;
  /// Of the registry sample, how many the TSPU blocks (§6.3: 9,655).
  std::size_t registry_tspu_blocked = 9655;
  std::uint64_t seed = 2022;
};

class DomainCorpus {
 public:
  static DomainCorpus generate(const CorpusConfig& config = {});

  const std::vector<DomainInfo>& domains() const { return domains_; }

  /// Indices of Tranco-list / registry-sample members.
  std::vector<const DomainInfo*> tranco_list() const;
  std::vector<const DomainInfo*> registry_sample() const;

  /// (domain, added_day) pairs of every in-registry domain, for building
  /// per-ISP blocklists.
  std::vector<std::pair<std::string, int>> registry_entries() const;

  /// Registers every TSPU-targeted domain's behaviors on `policy`.
  void install_policy(core::Policy& policy) const;

  const DomainInfo* find(const std::string& name) const;

  /// Simulated global DNS: domain -> hosting address.
  std::optional<util::Ipv4Addr> resolve(const std::string& name) const;

 private:
  std::vector<DomainInfo> domains_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Synthetic page text generator: draws keywords from the category's bank.
/// The topic model in measure/ classifies by these same banks, mirroring how
/// LDA recovers topics from real crawled pages.
std::string synth_page_text(Category c, util::Rng& rng);

/// The keyword bank of a category (the "topic" LDA would recover).
std::vector<std::string> category_keywords(Category c);

}  // namespace tspu::topo
