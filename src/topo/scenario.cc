#include "topo/scenario.h"

#include <algorithm>
#include <stdexcept>

#include "ispdpi/resolver.h"
#include "netsim/router.h"
#include "obs/obs.h"
#include "util/buffer_pool.h"

namespace tspu::topo {
namespace {

using netsim::NodeId;
using util::Ipv4Addr;
using util::Ipv4Prefix;

// Table-1 calibration. Paths in Rostelecom/OBIT cross two devices for the
// trigger types both can enforce, so per-device rates are the square roots
// of the observed end-to-end failure percentages; SNI-I is enforceable only
// by the symmetric device (it needs downstream visibility to inject
// RST/ACKs), so its rate is used as-is on the symmetric box.
core::FailureRates rostelecom_rates() {
  core::FailureRates r;
  r.sni_i = 0.00084;   // observed 0.084% (symmetric device only)
  r.sni_ii = 0.005;    // sqrt(0.0025%)
  r.sni_iv = 0.0027;   // observed 0.27% (symmetric device only: the
                       // upstream-only box can neither inject RST/ACKs nor
                       // see the role reversal that arms SNI-IV)
  r.quic = 0.014;      // sqrt(0.02%)
  r.ip_based = 0.0;    // observed 0.00%
  r.sni_iii = 0.002;
  return r;
}

core::FailureRates obit_rates() {
  core::FailureRates r;
  r.sni_i = 0.0014;    // observed 0.14%
  r.sni_ii = 0.007;    // sqrt(0.005%)
  r.sni_iv = 0.0004;   // observed 0.04% (symmetric device only)
  r.quic = 0.0;        // observed 0.00%
  r.ip_based = 0.014;  // sqrt(0.02%)
  r.sni_iii = 0.002;
  return r;
}

core::FailureRates ertelecom_rates() {
  core::FailureRates r;
  r.sni_i = 0.009;     // N/A in Table 1; single-device ballpark
  r.sni_ii = 0.0176;   // observed 1.76%
  r.sni_iv = 0.0219;   // observed 2.19%
  r.quic = 0.0093;     // observed 0.93%
  r.ip_based = 0.00045;
  r.sni_iii = 0.002;
  return r;
}

/// Stream tag for per-ISP flood-driver reseeds (begin_trial), disjoint from
/// the device eviction-stream tags in tspu/device.cc.
constexpr std::uint32_t kFloodStream = 0xf10du;

}  // namespace

netsim::NodeId Scenario::add_router(const std::string& name, Ipv4Addr addr) {
  return net_.add(std::make_unique<netsim::Router>(name, addr));
}

netsim::Host* Scenario::add_host(const std::string& name, Ipv4Addr addr) {
  auto host = std::make_unique<netsim::Host>(name, addr);
  netsim::Host* raw = host.get();
  net_.add(std::move(host));
  return raw;
}

Scenario::Scenario(ScenarioConfig config)
    : policy_(std::make_shared<core::Policy>()),
      corpus_(DomainCorpus::generate(config.corpus)) {
  corpus_.install_policy(*policy_);
  set_throttling_era(config.throttling_era);
  const core::FailureRates no_failures{};

  // ------------------------------------------------------------ abroad
  const NodeId core_r = add_router("core", Ipv4Addr(198, 19, 0, 1));
  const NodeId us_r = add_router("us-router", Ipv4Addr(198, 41, 0, 1));
  const NodeId paris_r = add_router("paris-router", Ipv4Addr(163, 172, 0, 1));

  us_mm_.push_back(add_host("us-mm-1", Ipv4Addr(198, 41, 0, 10)));
  us_mm_.push_back(add_host("us-mm-2", Ipv4Addr(198, 41, 0, 11)));
  us_raw_ = add_host("us-raw", Ipv4Addr(198, 41, 0, 12));
  us_mm_.push_back(us_raw_);
  paris_mm_ = add_host("paris-mm", Ipv4Addr(163, 172, 0, 10));
  tor_node_ = add_host("tor-entry", Ipv4Addr(163, 172, 0, 11));

  net_.link(core_r, us_r);
  net_.link(core_r, paris_r);
  for (netsim::Host* h : us_mm_) {
    net_.link(us_r, h->id());
    net_.routes(us_r).add(Ipv4Prefix(h->addr(), 32), h->id());
    net_.routes(h->id()).set_default(us_r);
  }
  for (netsim::Host* h : {paris_mm_, tor_node_}) {
    net_.link(paris_r, h->id());
    net_.routes(paris_r).add(Ipv4Prefix(h->addr(), 32), h->id());
    net_.routes(h->id()).set_default(paris_r);
  }
  net_.routes(us_r).set_default(core_r);
  net_.routes(paris_r).set_default(core_r);

  // ------------------------------------------------------------ Russia
  const NodeId ru_core = add_router("ru-core", Ipv4Addr(80, 64, 0, 1));
  const NodeId transit_rt =
      add_router("transit-rostelecom", Ipv4Addr(188, 128, 0, 1));
  const NodeId transit_rc = add_router("transit-rascom", Ipv4Addr(81, 27, 0, 1));
  net_.link(core_r, ru_core);
  net_.link(ru_core, transit_rt);
  net_.link(ru_core, transit_rc);
  net_.routes(ru_core).set_default(core_r);
  net_.routes(transit_rt).set_default(ru_core);
  net_.routes(transit_rc).set_default(ru_core);
  net_.routes(core_r).add(Ipv4Prefix(Ipv4Addr(198, 41, 0, 0), 16), us_r);
  net_.routes(core_r).add(Ipv4Prefix(Ipv4Addr(163, 172, 0, 0), 16), paris_r);
  net_.routes(core_r).add(Ipv4Prefix(Ipv4Addr(5, 0, 0, 0), 8), ru_core);

  // State-table budgets and the overload policy are deployment-wide (§8's
  // "provisioned with enough computation and memory resources" knob): every
  // device gets the same caps. Defaults are unbounded, i.e. a no-op.
  auto apply_budgets = [&config](core::DeviceConfig& cfg) {
    cfg.conn_budget = config.conn_budget;
    cfg.frag_budget = config.frag_budget;
    cfg.overload = config.overload;
  };

  // Helper assembling one residential ISP and returning its VantagePoint.
  struct IspBuild {
    VantagePoint vp;
    NodeId access;
  };
  // Where each ISP's flood source attaches (access router + /16 base),
  // recorded as the ISPs are built.
  struct FloodSite {
    NodeId access;
    std::uint32_t base;
  };
  std::vector<FloodSite> flood_sites;
  auto build_isp = [&](const std::string& isp, Ipv4Addr net_base,
                       NodeId border_up, NodeId border_down) {
    const std::uint32_t base = net_base.value();
    const NodeId access = add_router(isp + "-access", Ipv4Addr(base + 1));
    netsim::Host* vp_host = add_host(isp + "-vp", Ipv4Addr(base + 100));
    netsim::Host* resolver = add_host(isp + "-resolver", Ipv4Addr(base + 53));
    netsim::Host* blockpage = add_host(isp + "-blockpage", Ipv4Addr(base + 80));

    net_.link(border_up, access);
    if (border_down != border_up) net_.link(border_down, access);
    for (netsim::Host* h : {vp_host, resolver, blockpage}) {
      net_.link(access, h->id());
      net_.routes(access).add(Ipv4Prefix(h->addr(), 32), h->id());
      net_.routes(h->id()).set_default(access);
    }
    net_.routes(access).set_default(border_up);
    net_.routes(border_up).add(Ipv4Prefix(net_base, 16), access);
    net_.routes(border_down).add(Ipv4Prefix(net_base, 16), access);

    // Blockpage server answers HTTP-ish on port 80.
    netsim::TcpServerOptions page;
    page.on_data = [isp](std::span<const std::uint8_t>) {
      return util::to_bytes("HTTP/1.1 200 OK\r\n\r\n<blocked by " + isp + ">");
    };
    blockpage->listen(80, page);

    IspBuild out;
    out.vp.isp = isp;
    out.vp.host = vp_host;
    out.vp.resolver = resolver->addr();
    out.vp.blockpage = blockpage->addr();
    out.access = access;
    flood_sites.push_back({access, base});
    return out;
  };

  util::Rng rng(config.seed);
  std::uint64_t device_seed = rng.next();

  // --- Rostelecom (AS12389): symmetric device near the access router, an
  // upstream-only device one hop behind (asymmetric return via border-b).
  {
    const NodeId agg = add_router("rostelecom-agg", Ipv4Addr(5, 16, 0, 2));
    const NodeId border_a = add_router("rostelecom-border-a", Ipv4Addr(5, 16, 0, 3));
    const NodeId border_b = add_router("rostelecom-border-b", Ipv4Addr(5, 16, 0, 4));
    net_.link(ru_core, border_a);
    net_.link(ru_core, border_b);
    net_.link(border_a, agg);
    net_.link(border_b, agg);
    net_.routes(border_a).set_default(ru_core);
    net_.routes(border_b).set_default(ru_core);
    net_.routes(agg).set_default(border_a);  // upstream exits via border-a
    net_.routes(ru_core).add(Ipv4Prefix(Ipv4Addr(5, 16, 0, 0), 16),
                             border_b);      // downstream returns via border-b
    net_.routes(border_a).add(Ipv4Prefix(Ipv4Addr(5, 16, 0, 0), 16), agg);
    net_.routes(border_b).add(Ipv4Prefix(Ipv4Addr(5, 16, 0, 0), 16), agg);

    IspBuild isp = build_isp("Rostelecom", Ipv4Addr(5, 16, 0, 0), agg, agg);

    core::DeviceConfig sym_cfg;
    sym_cfg.capabilities = config.capabilities;
    sym_cfg.failures = config.perfect_devices ? no_failures : rostelecom_rates();
    apply_budgets(sym_cfg);
    sym_cfg.seed = device_seed++;
    auto sym = std::make_unique<core::Device>("tspu-rt-sym", policy_, sym_cfg);
    core::Device* sym_raw = sym.get();
    net_.insert_inline(isp.access, agg, std::move(sym));

    core::DeviceConfig up_cfg = sym_cfg;
    up_cfg.seed = device_seed++;
    auto up = std::make_unique<core::Device>("tspu-rt-uponly", policy_, up_cfg);
    core::Device* up_raw = up.get();
    net_.insert_inline(agg, border_a, std::move(up));

    isp.vp.devices = {sym_raw, up_raw};
    isp.vp.symmetric_devices = 1;
    vps_.push_back(isp.vp);
  }

  // --- ER-Telecom (AS50544): one symmetric device.
  {
    const NodeId border = add_router("ertelecom-border", Ipv4Addr(5, 12, 0, 2));
    net_.link(ru_core, border);
    net_.routes(border).set_default(ru_core);
    net_.routes(ru_core).add(Ipv4Prefix(Ipv4Addr(5, 12, 0, 0), 16), border);

    IspBuild isp = build_isp("ER-Telecom", Ipv4Addr(5, 12, 0, 0), border, border);

    core::DeviceConfig cfg;
    cfg.capabilities = config.capabilities;
    cfg.failures = config.perfect_devices ? no_failures : ertelecom_rates();
    apply_budgets(cfg);
    cfg.seed = device_seed++;
    auto dev = std::make_unique<core::Device>("tspu-ert-sym", policy_, cfg);
    core::Device* raw = dev.get();
    net_.insert_inline(isp.access, border, std::move(dev));

    isp.vp.devices = {raw};
    isp.vp.symmetric_devices = 1;
    vps_.push_back(isp.vp);
  }

  // --- OBIT (AS8492): symmetric device near access; upstream exits through
  // a transit chosen by destination (Rostelecom-transit for the US, RasCom
  // for Paris), each transit ingress hosting an upstream-only device; the
  // return path enters via a separate router and sees neither.
  {
    const NodeId obit_core = add_router("obit-core", Ipv4Addr(5, 8, 0, 2));
    const NodeId obit_return = add_router("obit-return", Ipv4Addr(5, 8, 0, 3));
    net_.link(ru_core, obit_return);
    net_.link(obit_return, obit_core);
    net_.link(obit_core, transit_rt);
    net_.link(obit_core, transit_rc);
    net_.routes(obit_return).set_default(ru_core);
    net_.routes(obit_return).add(Ipv4Prefix(Ipv4Addr(5, 8, 0, 0), 16), obit_core);
    net_.routes(ru_core).add(Ipv4Prefix(Ipv4Addr(5, 8, 0, 0), 16), obit_return);
    // Destination-dependent upstream transit (asymmetric routing, §7.1.1).
    net_.routes(obit_core).add(Ipv4Prefix(Ipv4Addr(163, 172, 0, 0), 16),
                               transit_rc);
    net_.routes(obit_core).set_default(transit_rt);

    IspBuild isp = build_isp("OBIT", Ipv4Addr(5, 8, 0, 0), obit_core, obit_core);

    core::DeviceConfig sym_cfg;
    sym_cfg.capabilities = config.capabilities;
    sym_cfg.failures = config.perfect_devices ? no_failures : obit_rates();
    apply_budgets(sym_cfg);
    sym_cfg.seed = device_seed++;
    auto sym = std::make_unique<core::Device>("tspu-obit-sym", policy_, sym_cfg);
    core::Device* sym_raw = sym.get();
    net_.insert_inline(isp.access, obit_core, std::move(sym));

    core::DeviceConfig up_cfg = sym_cfg;
    up_cfg.seed = device_seed++;
    auto up_rt = std::make_unique<core::Device>("tspu-transit-rt", policy_, up_cfg);
    core::Device* up_rt_raw = up_rt.get();
    net_.insert_inline(obit_core, transit_rt, std::move(up_rt));

    core::DeviceConfig up2_cfg = sym_cfg;
    up2_cfg.seed = device_seed++;
    auto up_rc = std::make_unique<core::Device>("tspu-transit-rc", policy_, up2_cfg);
    core::Device* up_rc_raw = up_rc.get();
    net_.insert_inline(obit_core, transit_rc, std::move(up_rc));

    isp.vp.devices = {sym_raw, up_rt_raw, up_rc_raw};
    isp.vp.symmetric_devices = 1;
    vps_.push_back(isp.vp);
  }

  // ------------------------------------------------- policy: blocked IPs
  // The Tor entry node ("out-registry" blocked since Dec 2021) plus six
  // additional IPs (VPN providers, Google services) — §5.2.
  policy_->block_ip(tor_node_->addr());
  for (int i = 0; i < 6; ++i) {
    Ipv4Addr extra(Ipv4Addr(93, 184, 200, 10).value() + i);
    policy_->block_ip(extra);
    extra_blocked_ips_.push_back(extra);
  }

  // ------------------------------------------------- servers & resolvers
  for (netsim::Host* mm : us_mm_) {
    if (mm == us_raw_) continue;  // the raw machine never answers on its own
    mm->listen(443, netsim::tls_server_options());
    mm->listen(7, netsim::echo_server_options());
    mm->listen(80, netsim::echo_server_options());
    // QUIC-ish responder: any UDP/443 datagram gets a short reply.
    mm->udp_listen(443, [](netsim::Host& self, Ipv4Addr src,
                           const wire::UdpDatagram& d) {
      self.send_udp(src, 443, d.hdr.src_port, util::to_bytes("quic-reply"));
    });
  }
  // us-mm-2 answers a SYN with a bare SYN (split handshake) — the machine
  // configuration used to exercise SNI-IV (§6.2).
  {
    netsim::TcpServerOptions split = netsim::tls_server_options();
    split.split_handshake = true;
    us_mm_[1]->listen(443, split);
  }
  paris_mm_->listen(443, netsim::tls_server_options());
  paris_mm_->listen(7, netsim::echo_server_options());

  // Machines and vantage points are ours: their kernels are configured not
  // to interfere with crafted flows (no RST on unexpected segments).
  for (netsim::Host* mm : us_mm_) mm->rst_on_closed_port = false;
  paris_mm_->rst_on_closed_port = false;
  tor_node_->rst_on_closed_port = false;
  for (VantagePoint& v : vps_) v.host->rst_on_closed_port = false;

  // Per-ISP lagging blocklists (§6.3): Rostelecom synced only through
  // mid-January (1,302 of the 10k recent additions), OBIT through
  // mid-February (3,943), ER-Telecom nearly current.
  const ispdpi::IspBlocklist::Spec specs[3] = {
      {0.97, 15},   // Rostelecom: ~13% of the 0..115-day sample
      {0.98, 113},  // ER-Telecom: nearly everything
      {0.96, 47},   // OBIT: ~40% of the sample
  };
  auto registry = corpus_.registry_entries();
  for (std::size_t i = 0; i < vps_.size(); ++i) {
    auto bl = std::make_shared<ispdpi::IspBlocklist>(
        ispdpi::IspBlocklist::sample(registry, specs[i], rng));
    blocklists_.push_back(bl);
    netsim::Host* resolver = static_cast<netsim::Host*>(
        &net_.node(net_.find_by_addr(vps_[i].resolver)));
    ispdpi::ResolverConfig rc;
    rc.blocklist = bl;
    rc.blockpage_ip = vps_[i].blockpage;
    rc.zone = [this](const std::string& name) { return corpus_.resolve(name); };
    ispdpi::attach_blockpage_resolver(*resolver, std::move(rc));
  }

  // ------------------------------------------------- injected faults
  if (config.link_faults.any()) {
    net_.set_default_link_faults(config.link_faults);
  }
  if (config.device_faults.any()) {
    for (VantagePoint& v : vps_) {
      for (core::Device* d : v.devices) d->set_fault_plan(config.device_faults);
    }
  }

  // ------------------------------------------------- flood campaigns
  if (!config.floods.empty()) {
    // Silent sink abroad: flood SYNs/ACKs terminate here without replies
    // (no services, no RST-on-closed-port), so the only traffic a campaign
    // adds is the spoofed upstream packets crossing each ISP's devices.
    netsim::Host* sink = add_host("flood-sink", Ipv4Addr(198, 41, 0, 200));
    net_.link(us_r, sink->id());
    net_.routes(us_r).add(Ipv4Prefix(sink->addr(), 32), sink->id());
    net_.routes(sink->id()).set_default(us_r);
    sink->rst_on_closed_port = false;
    sink->set_capture_limit(0);

    for (std::size_t i = 0; i < flood_sites.size(); ++i) {
      const FloodSite& site = flood_sites[i];
      netsim::Host* src =
          add_host(vps_[i].isp + "-flood", Ipv4Addr(site.base + 200));
      net_.link(site.access, src->id());
      net_.routes(site.access).add(Ipv4Prefix(src->addr(), 32), src->id());
      net_.routes(src->id()).set_default(site.access);
      src->rst_on_closed_port = false;
      src->set_capture_limit(0);

      std::vector<netsim::FloodCampaign> campaigns = config.floods;
      for (netsim::FloodCampaign& c : campaigns) {
        if (c.targets.empty()) c.targets.push_back(sink->addr());
        // Spoof from the unused upper half of the ISP's /16: in-subnet
        // sources look local to the devices, and nothing ever answers to
        // those addresses.
        if (c.spoof_base.value() == 0) c.spoof_base = Ipv4Addr(site.base + 0x8000);
      }
      flood_drivers_.push_back(
          std::make_unique<netsim::FloodDriver>(*src, std::move(campaigns)));
      // Construction-time arm off the config seed; begin_trial() re-arms
      // off each item seed.
      flood_drivers_.back()->arm(netsim::fault_stream_seed(
          config.seed, kFloodStream, static_cast<std::uint32_t>(i)));
    }
  }
}

VantagePoint& Scenario::vp(const std::string& isp_name) {
  for (VantagePoint& v : vps_) {
    if (v.isp == isp_name) return v;
  }
  throw std::invalid_argument("no vantage point in ISP " + isp_name);
}

std::vector<core::Device*> Scenario::devices() const {
  std::vector<core::Device*> out;
  for (const VantagePoint& v : vps_) {
    for (core::Device* d : v.devices) {
      if (std::find(out.begin(), out.end(), d) == out.end()) out.push_back(d);
    }
  }
  return out;
}

std::vector<netsim::Host*> Scenario::measurement_hosts() const {
  std::vector<netsim::Host*> hosts;
  for (const VantagePoint& v : vps_) hosts.push_back(v.host);
  hosts.insert(hosts.end(), us_mm_.begin(), us_mm_.end());
  hosts.push_back(us_raw_);
  hosts.push_back(paris_mm_);
  hosts.push_back(tor_node_);
  return hosts;
}

void Scenario::reseed_stochastic(std::uint64_t seed) {
  util::Rng root(seed);
  for (VantagePoint& v : vps_) {
    for (core::Device* d : v.devices) d->reseed(root.next());
  }
  net_.seed_loss_rng(root.next());
  // Rotates every per-link fault stream and re-anchors the flap/reboot epoch
  // at the current instant; drawn last so the device/loss streams above keep
  // their historical seeds.
  net_.reseed_fault_rngs(root.next());
}

void Scenario::begin_trial(std::uint64_t item_seed) {
  // Mute the quiesce (its event count depends on the shard's item history)
  // and re-anchor trace timestamps at the trial start — see
  // NationalTopology::begin_trial.
  obs::MuteGuard mute;
  net_.sim().run_until_idle();
  net_.sim().run_for(util::Duration::seconds(1000));
  reseed_stochastic(item_seed);
  // Restart the flood campaigns with trial-local spoof streams; leftovers
  // from the previous item already ran dry during the quiesce above.
  for (std::size_t i = 0; i < flood_drivers_.size(); ++i) {
    flood_drivers_[i]->arm(netsim::fault_stream_seed(
        item_seed, kFloodStream, static_cast<std::uint32_t>(i)));
  }
  std::vector<netsim::Host*> hosts;
  for (VantagePoint& v : vps_) hosts.push_back(v.host);
  hosts.insert(hosts.end(), us_mm_.begin(), us_mm_.end());
  hosts.push_back(us_raw_);
  hosts.push_back(paris_mm_);
  hosts.push_back(tor_node_);
  for (netsim::Host* h : hosts) {
    h->reset_traffic_state();
    h->reset_protocol_counters();
  }
  // DNS transaction IDs are per-worker state; re-anchor them so the IDs a
  // trial sees do not encode how many queries earlier items sent.
  ispdpi::reset_dns_query_ids();
  // Payload-buffer free lists are per-worker state too: purge them so a
  // trial's allocator footprint never depends on what ran before it.
  util::reset_buffer_pool();
  obs::anchor_epoch(net_.now());
}

void Scenario::set_throttling_era(bool on) {
  // §5.2 SNI-III: hard throttling of twitter.com / fbcdn.net between Feb 26
  // and March 4, 2022, replaced by RST/ACK (SNI-I) afterwards. twitter.com
  // keeps its SNI-IV backup flag in both eras.
  core::SniPolicy twitter;
  twitter.throttle = on;
  twitter.rst_ack = !on;
  twitter.backup_drop = true;
  policy_->add_sni("twitter.com", twitter);

  core::SniPolicy fbcdn;
  fbcdn.throttle = on;
  fbcdn.rst_ack = !on;
  policy_->add_sni("fbcdn.net", fbcdn);
}

}  // namespace tspu::topo
