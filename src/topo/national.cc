#include "topo/national.h"

#include <algorithm>
#include <cmath>

#include "ispdpi/resolver.h"
#include "netsim/router.h"
#include "obs/obs.h"
#include "util/buffer_pool.h"

namespace tspu::topo {
namespace {

using netsim::NodeId;
using util::Ipv4Addr;
using util::Ipv4Prefix;

constexpr int kRegions = 8;
constexpr std::size_t kEndpointsPerAccess = 200;

/// Stream tag for flood-driver reseeds (begin_trial), disjoint from the
/// device eviction-stream tags in tspu/device.cc.
constexpr std::uint32_t kFloodStream = 0xf10du;

/// Where in the AS the TSPU sits, which fixes the hop distance the
/// frag-TTL localization should recover (Figure 12).
enum class DeviceDepth {
  kNone,
  kAccessLink,   // border—access link: 1 router hop from the endpoint
  kBorderLink,   // region—border link: 2 hops
  kTransitLink,  // region—transit link (censorship-as-a-service): 3 hops
};

struct PortShare {
  std::uint16_t port;
  double residential, mixed, datacenter, small;
};

// Port mixes by network kind. These drive Figure 9's shape: TR-069 (7547)
// and other CPE ports live almost entirely in residential eyeball networks
// (where the TSPU coverage is), server ports mostly in datacenters.
constexpr PortShare kPortShares[] = {
    {21,    0.010, 0.050, 0.090, 0.050},
    {22,    0.010, 0.090, 0.170, 0.080},
    {80,    0.040, 0.220, 0.290, 0.250},
    {443,   0.030, 0.250, 0.330, 0.270},
    {445,   0.120, 0.050, 0.010, 0.050},
    {1723,  0.050, 0.020, 0.005, 0.020},
    {3389,  0.080, 0.060, 0.030, 0.060},
    {7547,  0.500, 0.020, 0.005, 0.020},
    {8080,  0.090, 0.140, 0.050, 0.110},
    {58000, 0.070, 0.090, 0.020, 0.080},
};

std::uint16_t draw_port(AsKind kind, util::Rng& rng) {
  double roll = rng.uniform();
  for (const PortShare& ps : kPortShares) {
    const double share = kind == AsKind::kResidential ? ps.residential
                         : kind == AsKind::kMixed     ? ps.mixed
                         : kind == AsKind::kDatacenter ? ps.datacenter
                                                        : ps.small;
    if (roll < share) return ps.port;
    roll -= share;
  }
  return 443;
}

std::string draw_label(AsKind kind, util::Rng& rng) {
  const double r = rng.uniform();
  switch (kind) {
    case AsKind::kResidential:
      return r < 0.55 ? "router" : r < 0.63 ? "switch" : r < 0.65 ? "server" : "unknown";
    case AsKind::kDatacenter:
      return r < 0.10 ? "router" : r < 0.15 ? "switch" : r < 0.75 ? "server" : "unknown";
    case AsKind::kMixed:
    case AsKind::kSmallLeaf:
      return r < 0.30 ? "router" : r < 0.45 ? "switch" : r < 0.65 ? "server" : "unknown";
  }
  return "unknown";
}

core::FailureRates national_device_rates() {
  core::FailureRates r;
  r.sni_i = 0.003;
  r.sni_ii = 0.003;
  r.sni_iv = 0.01;
  r.quic = 0.003;
  r.ip_based = 0.003;
  return r;
}

}  // namespace

std::string as_kind_name(AsKind k) {
  switch (k) {
    case AsKind::kResidential: return "residential";
    case AsKind::kMixed: return "mixed";
    case AsKind::kDatacenter: return "datacenter";
    case AsKind::kSmallLeaf: return "small-leaf";
  }
  return "?";
}

NationalTopology::NationalTopology(NationalConfig config)
    : config_(config), policy_(std::make_shared<core::Policy>()) {
  build();
  if (config_.link_faults.any()) {
    net_.set_default_link_faults(config_.link_faults);
  }
  if (config_.device_faults.any()) {
    for (core::Device* d : devices_) d->set_fault_plan(config_.device_faults);
  }
}

void NationalTopology::reseed_stochastic(std::uint64_t seed) {
  util::Rng root(seed);
  for (core::Device* d : devices_) d->reseed(root.next());
  net_.seed_loss_rng(root.next());
  // Rotates every per-link fault stream and re-anchors the flap/reboot epoch
  // at the current instant; drawn last so the device/loss streams above keep
  // their historical seeds.
  net_.reseed_fault_rngs(root.next());
}

void NationalTopology::begin_trial(std::uint64_t item_seed) {
  // The quiesce below processes whatever the previous item left in flight,
  // and how much that is depends on which items shared this replica — so
  // none of it may reach the flight recorder, or per-item counters would
  // differ across job counts.
  obs::MuteGuard mute;
  // Drain whatever the previous item left in flight, then jump the clock far
  // past the longest TSPU timeout (480 s established conntrack), so every
  // conntrack entry, blocking verdict, and fragment queue from earlier items
  // is expired by the time this item's packets arrive.
  net_.sim().run_until_idle();
  net_.sim().run_for(util::Duration::seconds(1000));
  reseed_stochastic(item_seed);
  // Restart the flood campaigns with a trial-local spoof stream; leftovers
  // from the previous item already ran dry during the quiesce above.
  if (flood_driver_) {
    flood_driver_->arm(netsim::fault_stream_seed(item_seed, kFloodStream, 0));
  }
  for (netsim::Host* h : {prober_, tor_node_}) {
    h->reset_traffic_state();
    h->reset_protocol_counters();
  }
  // DNS transaction IDs are per-worker state; re-anchor them so the IDs a
  // trial sees do not encode how many queries earlier items sent.
  ispdpi::reset_dns_query_ids();
  // Payload-buffer free lists are per-worker state too: purge them so a
  // trial's allocator footprint never depends on what ran before it.
  util::reset_buffer_pool();
  // Re-anchor trace timestamps at the trial start: shard clocks accumulate
  // across the items a shard has run, so absolute times are job-count
  // dependent while trial-relative times are not.
  obs::anchor_epoch(net_.now());
}

void NationalTopology::build() {
  util::Rng rng(config_.seed);
  std::uint64_t device_seed = rng.next();

  // SNI-II policy entries used by the echo (Quack) measurement, and the
  // blocked-IP list headed by the Tor entry node.
  core::SniPolicy sni_ii;
  sni_ii.delayed_drop = true;
  policy_->add_sni("play.google.com", sni_ii);
  policy_->add_sni("nordvpn.com", sni_ii);

  // -------------------------------------------------------------- backbone
  auto add_router = [&](const std::string& name, Ipv4Addr addr) {
    return net_.add(std::make_unique<netsim::Router>(name, addr));
  };
  const NodeId world = add_router("world", Ipv4Addr(198, 19, 1, 1));
  const NodeId ru_core = add_router("ru-core", Ipv4Addr(80, 64, 1, 1));
  net_.link(world, ru_core);
  net_.routes(world).set_default(ru_core);
  net_.routes(ru_core).set_default(world);

  {
    auto prober = std::make_unique<netsim::Host>("paris-prober",
                                                 Ipv4Addr(163, 172, 1, 10));
    prober_ = prober.get();
    net_.add(std::move(prober));
    auto tor = std::make_unique<netsim::Host>("tor-entry",
                                              Ipv4Addr(163, 172, 1, 11));
    tor_node_ = tor.get();
    net_.add(std::move(tor));
    for (netsim::Host* h : {prober_, tor_node_}) {
      net_.link(world, h->id());
      net_.routes(world).add(Ipv4Prefix(h->addr(), 32), h->id());
      net_.routes(h->id()).set_default(world);
    }
  }
  policy_->block_ip(tor_node_->addr());

  std::vector<NodeId> regions;
  for (int i = 0; i < kRegions; ++i) {
    const NodeId r = add_router("region-" + std::to_string(i),
                                Ipv4Addr(Ipv4Addr(80, 64, 2, 1).value() + i));
    regions.push_back(r);
    net_.link(ru_core, r);
    net_.routes(r).set_default(ru_core);
  }

  // ----------------------------------------------------------- AS planning
  const std::size_t total_endpoints = std::max<std::size_t>(
      200, static_cast<std::size_t>(4'005'138 * config_.endpoint_scale));

  struct Plan {
    AsKind kind;
    DeviceDepth depth = DeviceDepth::kNone;
    bool up_only = false;    ///< device sees upstream traffic only
    bool down_only = false;  ///< device sees downstream traffic only
    /// Extra internal routers between border and access layer: bigger ISPs
    /// have deeper aggregation, which pushes border/transit-placed devices
    /// further from endpoints (Figure 12's 3+-hop tail).
    int extra_depth = 0;
    std::size_t endpoints = 0;
    std::size_t echo_filtered = 0;    ///< echo servers with router/switch label
    std::size_t echo_unfiltered = 0;  ///< echo servers filtered out by Nmap
  };
  std::vector<Plan> plans(config_.n_ases);

  // Kind mix: many tiny datacenter/small-org ASes, few but huge eyeball
  // networks — which is why only ~13% of ASes but ~25% of endpoints show
  // TSPU behavior (§7.3).
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const double r = rng.uniform();
    plans[i].kind = r < 0.10   ? AsKind::kResidential
                    : r < 0.25 ? AsKind::kMixed
                    : r < 0.75 ? AsKind::kDatacenter
                               : AsKind::kSmallLeaf;
  }

  // Endpoint allocation: Pareto-ish weights, residential ASes the largest.
  {
    std::vector<double> weights(plans.size());
    double total_w = 0;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      const double kind_w = plans[i].kind == AsKind::kResidential ? 17.0
                            : plans[i].kind == AsKind::kMixed     ? 8.0
                            : plans[i].kind == AsKind::kDatacenter ? 4.0
                                                                    : 1.2;
      const double tail = std::pow(rng.uniform(), 1.2);  // heavy-ish tail
      weights[i] = kind_w * (0.2 + tail);
      total_w += weights[i];
    }
    for (std::size_t i = 0; i < plans.size(); ++i) {
      // Cap at 50k so the per-AS /16 addressing plan always fits.
      plans[i].endpoints = std::clamp<std::size_t>(
          static_cast<std::size_t>(total_endpoints * weights[i] / total_w), 2,
          50'000);
    }
  }

  // TSPU coverage per kind; placement depth sets Figure 12's histogram.
  for (Plan& p : plans) {
    double covered = 0;
    switch (p.kind) {
      case AsKind::kResidential: covered = 0.80; break;
      case AsKind::kMixed: covered = 0.22; break;
      case AsKind::kDatacenter: covered = 0.01; break;
      case AsKind::kSmallLeaf: covered = 0.15; break;
    }
    if (!rng.bernoulli(covered)) continue;
    if (p.kind == AsKind::kSmallLeaf) {
      p.depth = DeviceDepth::kTransitLink;  // rides its transit's device
    } else if (p.kind == AsKind::kMixed) {
      p.depth = rng.bernoulli(0.7) ? DeviceDepth::kBorderLink
                                   : DeviceDepth::kTransitLink;
    } else {
      const double r = rng.uniform();
      p.depth = r < 0.56   ? DeviceDepth::kAccessLink
                : r < 0.92 ? DeviceDepth::kBorderLink
                           : DeviceDepth::kTransitLink;
    }
    // Aggregation depth (independent of device placement).
    const double d = rng.uniform();
    p.extra_depth = d < 0.50 ? 0 : d < 0.75 ? 1 : d < 0.90 ? 2 : 3;
  }

  // Echo-server distribution engineered to reproduce Table 4/5:
  //   ~417 Nmap-filtered echo servers inside ~15 ASes with UPSTREAM-ONLY
  //   transit devices (echo-positive), ~44 in symmetric-TSPU ASes (IP-
  //   positive but echo-negative), the rest in uncensored ASes.
  {
    std::vector<std::size_t> up_only_ases, sym_ases, clean_ases, down_only_ases;
    for (std::size_t i = 0; i < plans.size(); ++i) {
      Plan& p = plans[i];
      if (p.kind == AsKind::kDatacenter && p.depth == DeviceDepth::kNone &&
          clean_ases.size() < 145) {
        clean_ases.push_back(i);
      } else if (p.depth != DeviceDepth::kNone && sym_ases.size() < 28 &&
                 p.kind == AsKind::kMixed) {
        sym_ases.push_back(i);
      }
    }
    // Promote 15 mixed/small ASes to asymmetric upstream-only routing.
    for (std::size_t i = 0; i < plans.size() && up_only_ases.size() < 15; ++i) {
      Plan& p = plans[i];
      if (p.kind == AsKind::kMixed && p.depth == DeviceDepth::kNone) {
        p.depth = DeviceDepth::kBorderLink;
        p.up_only = true;
        up_only_ases.push_back(i);
      }
    }
    // A few downstream-only devices populate Table 5's IP(N)/Frag(B) cell.
    for (std::size_t i = 0; i < plans.size() && down_only_ases.size() < 6; ++i) {
      Plan& p = plans[i];
      if (p.kind == AsKind::kSmallLeaf && p.depth == DeviceDepth::kNone) {
        p.depth = DeviceDepth::kBorderLink;
        p.down_only = true;
        down_only_ases.push_back(i);
      }
    }

    // Table 4/5 proportions of the 1404-server echo population: 417
    // filtered in upstream-only ASes, 44 in symmetric ones, 675 in clean
    // ones, 268 filtered out by the Nmap labels. Scaled to echo_servers.
    const std::size_t echo_total = config_.echo_servers;
    const double unit = static_cast<double>(echo_total) / 1404.0;
    const std::size_t filtered_up = static_cast<std::size_t>(417 * unit);
    const std::size_t filtered_sym = static_cast<std::size_t>(44 * unit);
    const std::size_t filtered_clean = static_cast<std::size_t>(675 * unit);
    const std::size_t unfiltered =
        echo_total - std::min(echo_total,
                              filtered_up + filtered_sym + filtered_clean);
    auto spread = [&](std::vector<std::size_t>& ases, std::size_t filtered,
                      std::size_t plain) {
      if (ases.empty()) return;
      for (std::size_t k = 0; k < filtered; ++k)
        plans[ases[k % ases.size()]].echo_filtered++;
      for (std::size_t k = 0; k < plain; ++k)
        plans[ases[k % ases.size()]].echo_unfiltered++;
    };
    spread(up_only_ases, filtered_up, unfiltered / 3);
    spread(sym_ases, filtered_sym, unfiltered / 3);
    spread(clean_ases, filtered_clean, unfiltered - 2 * (unfiltered / 3));
  }

  // -------------------------------------------------------------- build ASes
  // One silent flood-sink address per covered AS (filled while building).
  std::vector<Ipv4Addr> flood_sinks;
  ases_.reserve(plans.size());
  for (std::size_t i = 0; i < plans.size(); ++i) {
    const Plan& plan = plans[i];
    const std::uint32_t base = Ipv4Addr(45, 0, 0, 0).value() +
                               static_cast<std::uint32_t>(i) * 0x10000;
    AsInfo info;
    info.name = "AS" + std::to_string(64000 + i);
    info.kind = plan.kind;
    info.prefix = Ipv4Prefix(Ipv4Addr(base), 16);
    info.has_tspu = plan.depth == DeviceDepth::kAccessLink ||
                    plan.depth == DeviceDepth::kBorderLink;
    info.behind_transit_tspu = plan.depth == DeviceDepth::kTransitLink;
    info.asymmetric_upstream = plan.up_only;
    info.asymmetric_downstream = plan.down_only;
    info.endpoint_count = plan.endpoints;

    const NodeId region = regions[i % kRegions];

    // Intra-AS routers. Optional transit hop for censorship-as-a-service.
    NodeId upstream_attach = region;
    if (plan.depth == DeviceDepth::kTransitLink) {
      const NodeId transit =
          add_router(info.name + "-transit", Ipv4Addr(base + 5));
      net_.link(region, transit);
      net_.routes(transit).set_default(region);
      net_.routes(region).add(info.prefix, transit);
      upstream_attach = transit;
    }

    const NodeId border = add_router(info.name + "-border", Ipv4Addr(base + 1));
    net_.link(upstream_attach, border);
    net_.routes(border).set_default(upstream_attach);
    net_.routes(upstream_attach).add(info.prefix, border);
    net_.routes(ru_core).add(info.prefix, region);

    // Asymmetric variants get a second border for one direction.
    NodeId border_up = border, border_down = border;
    if (plan.up_only || plan.down_only) {
      const NodeId alt = add_router(info.name + "-border2", Ipv4Addr(base + 2));
      net_.link(upstream_attach, alt);
      net_.routes(alt).set_default(upstream_attach);
      if (plan.up_only) {
        border_up = border;   // device goes on this link
        border_down = alt;    // return path bypasses it
      } else {
        border_up = alt;
        border_down = border;
      }
      // Downstream enters through `border_down`; upstream leaves through
      // `border_up`. The device (spliced below) only sits on one of them.
      net_.routes(upstream_attach).rewrite_next_hop(border, border_down);
    }

    // Optional aggregation chain below the border (asymmetric ASes keep a
    // flat layout to keep their dual-border routing simple).
    const int extra =
        (plan.up_only || plan.down_only) ? 0 : plan.extra_depth;
    NodeId attach_up = border_up, attach_down = border_down;
    for (int k = 0; k < extra; ++k) {
      const NodeId agg = add_router(
          info.name + "-agg" + std::to_string(k),
          Ipv4Addr(base + 6 + static_cast<std::uint32_t>(k)));
      net_.link(attach_up, agg);
      net_.routes(agg).set_default(attach_up);
      net_.routes(attach_up).add(info.prefix, agg);
      attach_up = attach_down = agg;
    }

    // Access routers and endpoints.
    const std::size_t n_access =
        (plan.endpoints + kEndpointsPerAccess - 1) / kEndpointsPerAccess;
    std::vector<NodeId> access_routers;
    for (std::size_t a = 0; a < n_access; ++a) {
      const NodeId acc = add_router(
          info.name + "-acc" + std::to_string(a),
          Ipv4Addr(base + 10 + static_cast<std::uint32_t>(a)));
      access_routers.push_back(acc);
      net_.link(attach_up, acc);
      if (attach_down != attach_up) net_.link(attach_down, acc);
      net_.routes(acc).set_default(attach_up);
      const Ipv4Prefix slice(
          Ipv4Addr(base + 0x100 + static_cast<std::uint32_t>(a) * 0x100), 24);
      net_.routes(attach_up).add(slice, acc);
      if (attach_down != attach_up) net_.routes(attach_down).add(slice, acc);
    }

    // Ground-truth visibility/hops for this AS's endpoints.
    bool down_visible = false, up_visible = false;
    int hops = -1;
    if (plan.depth != DeviceDepth::kNone) {
      up_visible = !plan.down_only;
      down_visible = !plan.up_only;
      if (down_visible) {
        hops = plan.depth == DeviceDepth::kAccessLink  ? 1
               : plan.depth == DeviceDepth::kBorderLink ? 2 + extra
                                                         : 3 + extra;
      }
    }

    // Endpoints.
    std::size_t echo_filtered_left = plan.echo_filtered;
    std::size_t echo_unfiltered_left = plan.echo_unfiltered;
    for (std::size_t e = 0; e < plan.endpoints; ++e) {
      const std::size_t a = e / kEndpointsPerAccess;
      const Ipv4Addr addr(base + 0x100 + static_cast<std::uint32_t>(a) * 0x100 +
                          1 + static_cast<std::uint32_t>(e % kEndpointsPerAccess));
      auto host = std::make_unique<netsim::Host>(
          info.name + "-ep" + std::to_string(e), addr);
      netsim::Host* raw = host.get();
      raw->set_capture_limit(0);  // endpoints don't need pcaps
      net_.add(std::move(host));
      net_.link(access_routers[a], raw->id());
      net_.routes(access_routers[a]).add(Ipv4Prefix(addr, 32), raw->id());
      net_.routes(raw->id()).set_default(access_routers[a]);

      Endpoint ep;
      ep.host = raw;
      ep.addr = addr;
      ep.as_index = static_cast<int>(i);
      ep.tspu_downstream_visible = down_visible;
      ep.tspu_upstream_visible = up_visible;
      ep.tspu_hops_from_endpoint = hops;
      if (echo_filtered_left > 0) {
        --echo_filtered_left;
        ep.echo_server = true;
        ep.device_label = rng.bernoulli(0.7) ? "router" : "switch";
        ep.port = 7;
      } else if (echo_unfiltered_left > 0) {
        --echo_unfiltered_left;
        ep.echo_server = true;
        ep.device_label = rng.bernoulli(0.6) ? "server" : "unknown";
        ep.port = 7;
      } else {
        ep.port = draw_port(plan.kind, rng);
        ep.device_label = draw_label(plan.kind, rng);
      }

      // A TCP service must answer probes: echo on port 7, sink elsewhere.
      raw->listen(ep.port, ep.echo_server ? netsim::echo_server_options()
                                          : netsim::TcpServerOptions{});
      endpoints_.push_back(ep);
    }

    // Flood sink: campaigns aim at this silent host (all ports closed, no
    // RSTs) instead of real endpoints. Flood traffic still crosses the AS's
    // device tables, but never touches the hosts whose responses the scans
    // measure — an endpoint's IP-ID/ISN counters would otherwise advance by
    // however many flood packets earlier work items pushed through this
    // replica, which is job-count dependent.
    if (!config_.floods.empty() && down_visible && !access_routers.empty()) {
      const Ipv4Addr sink_addr(base + 0x100 + 0xFE);
      auto sink =
          std::make_unique<netsim::Host>(info.name + "-floodsink", sink_addr);
      netsim::Host* raw_sink = sink.get();
      raw_sink->rst_on_closed_port = false;
      raw_sink->set_capture_limit(0);
      net_.add(std::move(sink));
      net_.link(access_routers[0], raw_sink->id());
      net_.routes(access_routers[0])
          .add(Ipv4Prefix(sink_addr, 32), raw_sink->id());
      net_.routes(raw_sink->id()).set_default(access_routers[0]);
      flood_sinks.push_back(sink_addr);
    }

    // Finally, splice the device in.
    if (plan.depth != DeviceDepth::kNone) {
      core::DeviceConfig cfg;
      cfg.failures = national_device_rates();
      if (plan.up_only) cfg.failures.ip_based = 0.03;  // Table 5 noise cell
      cfg.conn_budget = config_.conn_budget;
      cfg.frag_budget = config_.frag_budget;
      cfg.overload = config_.overload;
      cfg.seed = device_seed++;
      auto dev = std::make_unique<core::Device>("tspu-" + info.name, policy_, cfg);
      devices_.push_back(dev.get());
      switch (plan.depth) {
        case DeviceDepth::kAccessLink:
          // One device per access uplink; the first link is representative,
          // remaining access routers get their own boxes.
          for (std::size_t a = 0; a < access_routers.size(); ++a) {
            if (a == 0) {
              net_.insert_inline(access_routers[a], attach_up, std::move(dev));
            } else {
              core::DeviceConfig extra_cfg = cfg;
              extra_cfg.seed = device_seed++;
              auto extra_dev = std::make_unique<core::Device>(
                  "tspu-" + info.name + "-" + std::to_string(a), policy_,
                  extra_cfg);
              devices_.push_back(extra_dev.get());
              net_.insert_inline(access_routers[a], attach_up,
                                 std::move(extra_dev));
            }
          }
          break;
        case DeviceDepth::kBorderLink:
          // Down-only devices sit on the return-path border; symmetric and
          // up-only ones on the (shared or upstream) border.
          net_.insert_inline(plan.down_only ? border_down : border_up,
                             upstream_attach, std::move(dev));
          break;
        case DeviceDepth::kTransitLink:
          net_.insert_inline(upstream_attach, region, std::move(dev));
          break;
        case DeviceDepth::kNone:
          break;
      }
    }

    ases_.push_back(info);
  }

  // ----------------------------------------------------- flood campaigns
  if (!config_.floods.empty()) {
    auto fsrc = std::make_unique<netsim::Host>("flood-src",
                                               Ipv4Addr(198, 19, 2, 10));
    flood_src_ = fsrc.get();
    net_.add(std::move(fsrc));
    net_.link(world, flood_src_->id());
    net_.routes(world).add(Ipv4Prefix(flood_src_->addr(), 32),
                           flood_src_->id());
    net_.routes(flood_src_->id()).set_default(world);
    flood_src_->rst_on_closed_port = false;
    flood_src_->set_capture_limit(0);
    // Backscatter sink: the spoofed-source /22 routes back to the flood
    // source, which silently drops whatever RSTs/SYN-ACKs endpoints return
    // (otherwise they would ping-pong on the world<->ru-core default routes
    // until TTL exhaustion).
    net_.routes(world).add(Ipv4Prefix(Ipv4Addr(198, 19, 4, 0), 22),
                           flood_src_->id());

    std::vector<netsim::FloodCampaign> campaigns = config_.floods;
    for (netsim::FloodCampaign& c : campaigns) {
      if (c.spoof_base.value() == 0) {
        c.spoof_base = Ipv4Addr(198, 19, 4, 0);
        c.spoof_count = std::min<std::uint32_t>(c.spoof_count, 1024);
      }
      if (c.targets.empty()) {
        // One silent sink per AS with a downstream-visible device: inbound
        // flood traffic then crosses every table the fragmentation
        // fingerprint also exercises, without perturbing endpoint hosts.
        c.targets = flood_sinks;
      }
    }
    flood_driver_ =
        std::make_unique<netsim::FloodDriver>(*flood_src_, std::move(campaigns));
    flood_driver_->arm(
        netsim::fault_stream_seed(config_.seed, kFloodStream, 0));
  }
}

}  // namespace tspu::topo
