// National-scale RuNet model for the remote measurements of §7.2/§7.3.
//
// The paper scanned 4,005,138 endpoints across 4,986 ASes (top-10 open
// ports from Censys) and found 1,013,600 endpoints in 650 ASes behind
// TSPU-like fragmentation behavior. We reproduce the *shape* at a
// configurable scale (default 1:100): a backbone with regional routers,
// heavy-tailed AS sizes, TSPU placement near network leaves for residential
// ISPs, transit-installed devices providing "censorship-as-a-service" to
// small ISPs (Figure 11), and asymmetric-routing ASes whose upstream-only /
// downstream-only devices populate the disagreement cells of Table 5.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "topo/corpus.h"
#include "tspu/device.h"
#include "util/rng.h"

namespace tspu::topo {

enum class AsKind {
  kResidential,  ///< big eyeball ISPs: CPE ports, TSPU near access
  kMixed,        ///< enterprise/regional: some TSPU at borders
  kDatacenter,   ///< hosting: server ports, effectively no TSPU
  kSmallLeaf,    ///< tiny org ISPs, may ride a transit's TSPU (Fig 11)
};

std::string as_kind_name(AsKind k);

/// One scan target (IP:port), with ground truth for validating the probers.
struct Endpoint {
  netsim::Host* host = nullptr;
  util::Ipv4Addr addr;
  std::uint16_t port = 0;
  int as_index = -1;
  /// Ground truth: a TSPU with downstream visibility sits on the inbound
  /// path (what the fragmentation fingerprint can see).
  bool tspu_downstream_visible = false;
  /// Ground truth: a TSPU sees the endpoint's upstream traffic (what the
  /// echo technique and IP-blocking rewrite can see).
  bool tspu_upstream_visible = false;
  /// Ground truth: router hops between the TSPU link and this endpoint
  /// (-1 when no downstream-visible device exists).
  int tspu_hops_from_endpoint = -1;
  /// Nmap-style device label used by the ethics filter ("router", "switch",
  /// "server", "unknown").
  std::string device_label;
  bool echo_server = false;  ///< runs a TCP/7 echo service
};

struct AsInfo {
  std::string name;
  AsKind kind = AsKind::kSmallLeaf;
  util::Ipv4Prefix prefix;
  bool has_tspu = false;           ///< own device(s) in-AS
  bool behind_transit_tspu = false;///< covered by its transit's device
  bool asymmetric_upstream = false;///< upstream-only transit device on exit
  bool asymmetric_downstream = false;///< downstream-only device on return
  std::size_t endpoint_count = 0;
};

struct NationalConfig {
  /// 1.0 reproduces the paper's absolute endpoint counts (4M endpoints —
  /// slow); benches default to 0.01.
  double endpoint_scale = 0.01;
  std::size_t n_ases = 500;        ///< scaled from 4,986 (1:10)
  std::uint64_t seed = 650;
  /// Number of echo servers (TCP/7) — kept at the paper's absolute scale
  /// since the echo experiment was small (Table 4).
  std::size_t echo_servers = 1404;
  /// When non-empty, installed as the network-wide default link fault plan
  /// (netsim/faults.h) — the fault-matrix benches and robustness tests
  /// degrade the whole topology this way. Fault RNG streams are rotated by
  /// begin_trial(), so faulted scans stay job-count invariant.
  netsim::LinkFaultPlan link_faults;
  /// When non-empty, installed on every TSPU device (fail-open/fail-closed
  /// windows, mid-flow reboots). Windows are relative to each trial's epoch.
  netsim::DeviceFaultPlan device_faults;
  /// Conntrack capacity budget applied to every device. Default unbounded —
  /// byte-identical to the pre-budget deployment.
  core::TableBudget conn_budget;
  /// Fragment-engine capacity budget applied to every device.
  core::TableBudget frag_budget;
  /// Overload policy (fail-open/fail-closed + hysteresis band) applied to
  /// every device; consulted only when a bounded table rejects admission.
  core::OverloadPolicy overload;
  /// Background flood campaigns, replayed from a host outside RuNet toward
  /// silent sink hosts behind TSPU devices (one sink per covered AS when
  /// the campaign does not name its own targets — flood traffic must never
  /// touch real endpoints, whose protocol counters would otherwise pick up
  /// job-count-dependent churn). Re-armed by every begin_trial().
  std::vector<netsim::FloodCampaign> floods;
};

class NationalTopology {
 public:
  explicit NationalTopology(NationalConfig config = {});

  NationalTopology(const NationalTopology&) = delete;
  NationalTopology& operator=(const NationalTopology&) = delete;

  netsim::Network& net() { return net_; }
  core::PolicyPtr policy() { return policy_; }

  const std::vector<Endpoint>& endpoints() const { return endpoints_; }
  const std::vector<AsInfo>& ases() const { return ases_; }

  /// The Paris measurement machine (fragmentation probes, Quack).
  netsim::Host& prober() { return *prober_; }
  /// The blocked Tor-entry-node machine, same data center as the prober.
  netsim::Host& tor_node() { return *tor_node_; }

  const NationalConfig& config() const { return config_; }

  void settle() { net_.sim().run_until_idle(); }

  /// Every TSPU device in the topology, in deterministic creation order.
  const std::vector<core::Device*>& devices() const { return devices_; }

  /// The background flood driver (null unless config.floods was set).
  netsim::FloodDriver* flood_driver() { return flood_driver_.get(); }

  /// Reseeds the stochastic parts of the world (device failure RNGs, link
  /// loss) from one root seed, forked per consumer.
  void reseed_stochastic(std::uint64_t seed);

  /// Isolates the next work item: drains and advances the virtual clock far
  /// past every conntrack/blocking/fragment timeout (so state left by prior
  /// items lazily expires), reseeds the stochastic state from `item_seed`,
  /// and resets the measurement machines' captures and protocol counters.
  /// After this call the item's outcome depends only on (config, item_seed),
  /// which is what lets the shard runner replay any item on any shard.
  void begin_trial(std::uint64_t item_seed);

 private:
  void build();

  NationalConfig config_;
  netsim::Network net_;
  core::PolicyPtr policy_;
  std::vector<Endpoint> endpoints_;
  std::vector<AsInfo> ases_;
  std::vector<core::Device*> devices_;
  netsim::Host* prober_ = nullptr;
  netsim::Host* tor_node_ = nullptr;
  netsim::Host* flood_src_ = nullptr;
  std::unique_ptr<netsim::FloodDriver> flood_driver_;
};

/// The ten most-open ports of the paper's Censys scan (Figure 9).
inline constexpr std::uint16_t kScanPorts[] = {21,   22,   80,   443,  445,
                                               1723, 3389, 7547, 8080, 58000};

}  // namespace tspu::topo
