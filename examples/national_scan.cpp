// National scan: the §7.2 remote-measurement workflow — fingerprint every
// endpoint of a simulated RuNet with fragmented SYNs (no censorship
// triggers), localize the devices, and cross-check with the Tor-node
// IP-blocking signal. Demonstrates that the techniques infer deployment
// correctly from the outside, validated against topology ground truth.
//
//   $ ./build/examples/national_scan
//   $ SCAN_SCALE=0.01 ./build/examples/national_scan   # 10x bigger
#include <cstdio>
#include <cstdlib>
#include <map>

#include "measure/behavior.h"
#include "measure/frag_probe.h"
#include "measure/target_filter.h"
#include "topo/national.h"
#include "util/strings.h"

using namespace tspu;

int main() {
  const char* env = std::getenv("SCAN_SCALE");
  topo::NationalConfig config;
  config.endpoint_scale = env ? std::atof(env) : 0.002;
  config.n_ases = 250;
  topo::NationalTopology runet(config);

  std::printf("simulated RuNet: %zu endpoints across %zu ASes\n",
              runet.endpoints().size(), runet.ases().size());

  // Phase 1: fragmentation fingerprint sweep (innocuous traffic only).
  int positive = 0, truth_positive = 0, false_pos = 0, false_neg = 0;
  for (const auto& ep : runet.endpoints()) {
    const bool flagged = measure::probe_fragment_limit(
                             runet.net(), runet.prober(), ep.addr, ep.port)
                             .tspu_like();
    positive += flagged;
    truth_positive += ep.tspu_downstream_visible;
    false_pos += flagged && !ep.tspu_downstream_visible;
    false_neg += !flagged && ep.tspu_downstream_visible;
  }
  std::printf("\nfragmentation fingerprint sweep:\n");
  std::printf("  flagged TSPU-like: %d (ground truth: %d)\n", positive,
              truth_positive);
  std::printf("  false positives: %d, false negatives: %d\n", false_pos,
              false_neg);

  // Phase 2: localize a sample of positives and histogram device distance.
  std::map<int, int> hops;
  int localized = 0;
  for (const auto& ep : runet.endpoints()) {
    if (!ep.tspu_downstream_visible || localized >= 150) continue;
    auto loc = measure::locate_by_fragments(runet.net(), runet.prober(),
                                            ep.addr, ep.port);
    if (loc.device_hops_from_destination) {
      ++hops[*loc.device_hops_from_destination];
      ++localized;
    }
  }
  std::printf("\ndevice distance from endpoints (%d localized):\n", localized);
  for (const auto& [h, n] : hops) {
    std::printf("  %d hop(s): %d\n", h, n);
  }

  // Phase 3: cross-check a slice with the blocked-IP (Tor node) signal.
  int agree = 0, checked = 0;
  for (const auto& ep : runet.endpoints()) {
    if (checked >= 200) break;
    ++checked;
    const bool ip_b = measure::test_ip_blocking(runet.net(), runet.tor_node(),
                                                ep.addr, ep.port) ==
                      measure::IpBlockOutcome::kRstAckRewrite;
    if (ip_b == ep.tspu_upstream_visible) ++agree;
  }
  std::printf("\nIP-blocking signal agrees with upstream-visibility ground "
              "truth on %d/%d endpoints\n", agree, checked);
  return 0;
}
