// March-2022 timeline: replays the censorship events the paper documents,
// as seen live from one vantage point. Because every TSPU device shares the
// central Policy object, each Roskomnadzor decision takes effect at ALL
// vantage points at the same instant — the "centralized, real-time" control
// that distinguishes the TSPU from the old per-ISP model.
//
//   $ ./build/examples/march2022_timeline
#include <cstdio>

#include "measure/behavior.h"
#include "quic/quic.h"
#include "topo/scenario.h"

using namespace tspu;

namespace {

void probe(topo::Scenario& scenario, const char* when) {
  std::printf("%s\n", when);
  auto& net = scenario.net();
  const util::Ipv4Addr server = scenario.us_machine(0).addr();
  for (auto& vp : scenario.vantage_points()) {
    auto twitter = measure::test_sni(net, *vp.host, server, "twitter.com",
                                     measure::ClassifyDepth::kFull);
    auto meduza = measure::test_sni(net, *vp.host, server, "meduza.io",
                                    measure::ClassifyDepth::kQuick);
    auto quic = measure::test_quic(net, *vp.host, server, quic::kVersion1);
    std::printf("  %-11s twitter.com: %-22s meduza.io: %-16s QUICv1: %s\n",
                vp.isp.c_str(),
                measure::sni_outcome_name(twitter.outcome).c_str(),
                measure::sni_outcome_name(meduza.outcome).c_str(),
                quic.blocked ? "blocked" : "open");
    vp.host->reset_traffic_state();
  }
  std::printf("\n");
}

}  // namespace

int main() {
  topo::ScenarioConfig config;
  config.corpus.scale = 0.01;
  config.perfect_devices = true;
  config.throttling_era = true;  // start on Feb 26
  topo::Scenario scenario(config);
  auto policy = scenario.policy();
  policy->quic_blocking = false;  // QUIC was still open in February

  probe(scenario, "== Feb 26: hard throttling of Twitter begins (SNI-III); "
                  "independent media still reachable ==");

  // March 4: throttling replaced by RST/ACK blocking; QUIC filter turned on.
  scenario.set_throttling_era(false);
  policy->quic_blocking = true;
  probe(scenario, "== Mar 4: throttling switched to RST/ACK blocking; "
                  "QUIC v1 filtered nationwide ==");

  // Days later: western/independent news agencies blocked — added centrally,
  // no ISP involvement, effective everywhere at once.
  core::SniPolicy rst;
  rst.rst_ack = true;
  for (const char* domain : {"meduza.io", "bbc.com", "dw.com"}) {
    policy->add_sni(domain, rst);
  }
  probe(scenario, "== Mar 6+: news agencies (meduza.io, bbc.com, dw.com) "
                  "added to the central policy ==");

  std::printf("note how every vantage point flips in the same step: the\n"
              "devices are ordered, distributed and CONFIGURED by one\n"
              "authority — no per-ISP blocklist ever changed (SS 2, 5.1).\n");
  return 0;
}
