// Quickstart: build the Figure-1 testbed, trigger each kind of TSPU
// censorship from a residential vantage point, and read the verdicts.
//
//   $ ./build/examples/quickstart
//
// Everything below is public API: topo::Scenario wires the network,
// measure::* crafts and classifies the probes.
#include <cstdio>

#include "measure/behavior.h"
#include "measure/ttl_localize.h"
#include "quic/quic.h"
#include "topo/scenario.h"

using namespace tspu;

int main() {
  // 1. The testbed: three residential vantage points behind TSPU devices,
  //    measurement machines in the US and Paris, a blocked Tor-node IP.
  topo::ScenarioConfig config;
  config.corpus.scale = 0.02;  // small domain corpus is plenty here
  topo::Scenario scenario(config);

  auto& vp = scenario.vp("Rostelecom");
  auto& net = scenario.net();
  const util::Ipv4Addr server = scenario.us_machine(0).addr();

  // 2. A benign TLS connection sails through...
  auto ok = measure::test_sni(net, *vp.host, server, "example.com");
  std::printf("SNI example.com    -> %s\n",
              measure::sni_outcome_name(ok.outcome).c_str());

  // 3. ...a censored SNI gets its ServerHello rewritten to RST/ACK (SNI-I):
  auto blocked = measure::test_sni(net, *vp.host, server, "facebook.com");
  std::printf("SNI facebook.com   -> %s\n",
              measure::sni_outcome_name(blocked.outcome).c_str());

  // 4. QUIC v1 is fingerprinted and the whole flow killed; draft-29 evades:
  auto quic_v1 = measure::test_quic(net, *vp.host, server, quic::kVersion1);
  auto quic_29 =
      measure::test_quic(net, *vp.host, server, quic::kVersionDraft29);
  std::printf("QUIC v1            -> %s\n",
              quic_v1.blocked ? "flow dropped" : "passes");
  std::printf("QUIC draft-29      -> %s\n",
              quic_29.blocked ? "flow dropped" : "passes");

  // 5. The Tor entry node's IP is blocked: its SYN reaches a server in
  //    Russia, but the SYN/ACK comes back rewritten to RST/ACK.
  vp.host->listen(8080, netsim::TcpServerOptions{});
  auto ip = measure::test_ip_blocking(net, scenario.tor_node(),
                                      vp.host->addr(), 8080);
  std::printf("Tor node -> RU     -> %s\n",
              ip == measure::IpBlockOutcome::kRstAckRewrite
                  ? "SYN/ACK rewritten to RST/ACK"
                  : "unexpected");

  // 6. Where is the device? TTL-limit the trigger until blocking engages.
  auto where = measure::locate_sni_device(net, *vp.host, server,
                                          "facebook.com");
  if (where.first_blocking_ttl) {
    std::printf("TSPU located between hop %d and hop %d from the vantage "
                "point\n", *where.first_blocking_ttl - 1,
                *where.first_blocking_ttl);
  }
  return 0;
}
