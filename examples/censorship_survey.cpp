// Censorship survey: the §6 workflow end-to-end — sweep a domain list from
// all three vantage points, compare the TSPU's verdicts with the ISPs' own
// DNS blockpage censorship, and categorize what is blocked.
//
//   $ ./build/examples/censorship_survey            # 10% corpus
//   $ SURVEY_SCALE=1.0 ./build/examples/censorship_survey   # full lists
#include <cstdio>
#include <cstdlib>

#include "measure/domain_tester.h"
#include "measure/topic_model.h"
#include "topo/scenario.h"
#include "util/strings.h"

using namespace tspu;

int main() {
  const char* env = std::getenv("SURVEY_SCALE");
  topo::ScenarioConfig config;
  config.corpus.scale = env ? std::atof(env) : 0.1;
  topo::Scenario scenario(config);
  measure::DomainTester tester(scenario);

  // Probe the registry sample (domains added to the official registry in
  // 2022) from every vantage point, DNS included.
  auto verdicts = tester.run(scenario.corpus().registry_sample());

  int tspu_blocked = 0, uniform = 0;
  std::vector<int> isp_blocked(scenario.vantage_points().size(), 0);
  for (const auto& v : verdicts) {
    if (v.tspu_blocked_anywhere()) ++tspu_blocked;
    if (v.tspu_blocked_everywhere()) ++uniform;
    for (std::size_t i = 0; i < v.isp_blockpage.size(); ++i) {
      if (v.isp_blockpage[i]) ++isp_blocked[i];
    }
  }

  std::printf("registry sample: %zu domains\n", verdicts.size());
  std::printf("  blocked by TSPU anywhere:   %d\n", tspu_blocked);
  std::printf("  blocked by TSPU everywhere: %d  <- centralized uniformity\n",
              uniform);
  for (std::size_t i = 0; i < isp_blocked.size(); ++i) {
    std::printf("  %-12s DNS blockpages: %d\n",
                scenario.vantage_points()[i].isp.c_str(), isp_blocked[i]);
  }

  // Categorize the TSPU-blocked domains from page content alone.
  measure::TopicModel model;
  int by_category[topo::kCategoryCount] = {};
  for (const auto& v : verdicts) {
    if (!v.tspu_blocked_anywhere()) continue;
    const auto* info = scenario.corpus().find(v.domain);
    if (info) ++by_category[static_cast<int>(model.classify(info->page_text))];
  }
  std::printf("\nblocked domains by category:\n");
  for (int c = 0; c < topo::kCategoryCount; ++c) {
    if (by_category[c] == 0) continue;
    std::printf("  %-18s %d\n",
                topo::category_name(static_cast<topo::Category>(c)).c_str(),
                by_category[c]);
  }
  return 0;
}
