// Device playground: a minimal two-host network with one TSPU device, shown
// at packet level — the smallest possible program for studying the device's
// mechanics (conntrack roles, RST/ACK injection, fragment handling).
//
//   $ ./build/examples/device_playground
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/router.h"
#include "tls/clienthello.h"
#include "tspu/device.h"
#include "wire/fragment.h"

using namespace tspu;
using util::Ipv4Addr;
using util::Ipv4Prefix;

namespace {

void dump_capture(const netsim::Host& host, const char* title) {
  std::printf("--- capture at %s ---\n", title);
  for (const auto& cap : host.captured()) {
    std::printf("  %8s  %s\n", cap.outbound ? "OUT" : "IN",
                wire::summary(cap.pkt).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // client --- r1 --- [TSPU] --- r2 --- server
  netsim::Network net;
  auto client_p = std::make_unique<netsim::Host>("client", Ipv4Addr(5, 1, 0, 2));
  auto* client = client_p.get();
  auto server_p = std::make_unique<netsim::Host>("server", Ipv4Addr(93, 1, 0, 2));
  auto* server = server_p.get();
  server->listen(443, netsim::tls_server_options());

  const auto cid = net.add(std::move(client_p));
  const auto r1 = net.add(std::make_unique<netsim::Router>("r1", Ipv4Addr(5, 1, 0, 1)));
  const auto r2 = net.add(std::make_unique<netsim::Router>("r2", Ipv4Addr(93, 1, 0, 1)));
  const auto sid = net.add(std::move(server_p));
  net.link(cid, r1);
  net.link(r1, r2);
  net.link(r2, sid);
  net.routes(cid).set_default(r1);
  net.routes(r1).set_default(r2);
  net.routes(r1).add(Ipv4Prefix(Ipv4Addr(5, 1, 0, 2), 32), cid);
  net.routes(r2).set_default(r1);
  net.routes(r2).add(Ipv4Prefix(Ipv4Addr(93, 1, 0, 2), 32), sid);
  net.routes(sid).set_default(r2);

  // The device: block facebook.com with SNI-I (RST/ACK).
  auto policy = std::make_shared<core::Policy>();
  core::SniPolicy rule;
  rule.rst_ack = true;
  policy->add_sni("facebook.com", rule);
  auto device_owned = std::make_unique<core::Device>("tspu", policy);
  core::Device* device = device_owned.get();
  net.insert_inline(r1, r2, std::move(device_owned));

  // 1. A censored TLS exchange, packet by packet.
  std::printf("=== 1. TLS exchange with a censored SNI ===\n\n");
  auto& conn = client->connect(server->addr(), 443,
                               netsim::TcpClientOptions{.src_port = 40001});
  net.sim().run_until_idle();
  tls::ClientHelloSpec spec;
  spec.sni = "facebook.com";
  conn.send(tls::build_client_hello(spec));
  net.sim().run_until_idle();
  dump_capture(*client, "client");
  std::printf("client saw RST: %s (the ServerHello left the server intact "
              "and was rewritten in-path)\n\n", conn.got_rst() ? "yes" : "no");

  // 2. Fragments: buffered, TTL-rewritten, forwarded on completion.
  std::printf("=== 2. A fragmented datagram through the device ===\n\n");
  client->clear_captured();
  server->clear_captured();
  wire::Ipv4Header ip;
  ip.src = client->addr();
  ip.dst = server->addr();
  ip.id = 0x42;
  wire::Packet big = wire::make_udp_packet(ip, {5000, 5001},
                                           util::Bytes(96, 0xee));
  auto frags = wire::fragment(big, 40);
  frags[1].ip.ttl = 9;  // will be rewritten to frag[0]'s TTL
  for (const auto& f : frags) client->send_packet(f);
  net.sim().run_until_idle();
  dump_capture(*server, "server");

  // 3. Device statistics.
  const auto& stats = device->stats();
  std::printf("=== 3. Device statistics ===\n\n");
  std::printf("packets processed:  %llu\n",
              static_cast<unsigned long long>(stats.packets_processed));
  std::printf("RST/ACK rewrites:   %llu\n",
              static_cast<unsigned long long>(stats.rst_rewrites));
  std::printf("packets dropped:    %llu\n",
              static_cast<unsigned long long>(stats.packets_dropped));
  std::printf("fragments buffered: %llu\n",
              static_cast<unsigned long long>(
                  device->frag_stats().fragments_buffered));
  return 0;
}
