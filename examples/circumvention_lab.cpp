// Circumvention lab: interactively evaluate the §8 evasion strategies from
// one vantage point, with extra detail on WHY each works or fails.
//
//   $ ./build/examples/circumvention_lab [isp]
//   isp: Rostelecom | ER-Telecom | OBIT (default ER-Telecom)
#include <cstdio>
#include <string>

#include "circumvent/strategies.h"
#include "topo/scenario.h"

using namespace tspu;

int main(int argc, char** argv) {
  const std::string isp = argc > 1 ? argv[1] : "ER-Telecom";

  topo::ScenarioConfig config;
  config.corpus.scale = 0.02;
  config.perfect_devices = true;  // deterministic demo
  topo::Scenario scenario(config);
  auto& vp = scenario.vp(isp);

  std::printf("vantage point: %s — %zu TSPU device(s) on the upstream path "
              "(%d symmetric)\n\n",
              isp.c_str(), vp.devices.size(), vp.symmetric_devices);

  for (const auto& o : circumvent::evaluate_strategies(scenario, vp)) {
    std::printf("%-30s", circumvent::strategy_name(o.strategy).c_str());
    if (o.applicable_to_tls) {
      std::printf("  SNI-I: %-8s SNI-II: %-8s",
                  o.evades_sni_i ? "EVADES" : "blocked",
                  o.evades_sni_ii ? "EVADES" : "blocked");
    }
    if (o.applicable_to_quic) {
      std::printf("  QUIC: %s", o.evades_quic ? "EVADES" : "blocked");
    }
    std::printf("\n");
  }

  std::printf(
      "\nwhy:\n"
      "  - split handshake makes the device label the LOCAL side 'server'\n"
      "    (it trusts literal SYN/SYN-ACK roles), exempting SNI-I; but a\n"
      "    device that only sees the upstream direction never observes the\n"
      "    server's bare SYN, so on paths with upstream-only boxes SNI-II\n"
      "    still fires (compare ER-Telecom vs Rostelecom).\n"
      "  - splitting the ClientHello (window/segments/fragments/padding)\n"
      "    defeats a DPI that does not reassemble TCP streams (§8).\n"
      "  - the TTL decoy is mitigated: the TSPU inspects every packet in\n"
      "    the session, not just the first data packet.\n"
      "  - QUIC blocking matches only version 1's plaintext version field.\n");
  return 0;
}
